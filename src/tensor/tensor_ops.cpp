#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <tuple>
#include <vector>

#include "mac/gemm.hpp"

namespace srmac {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Dispatches one float-operand GEMM on the context's backend, recording
/// the call into the telemetry sink when one is attached.
void dispatch(const ComputeContext& ctx, const GemmArgs& args) {
  assert(ctx.backend && "ComputeContext must carry a backend");
  const MacConfig cfg = ctx.mac_config().normalized();
  const double t0 = ctx.telemetry ? now_s() : 0.0;
  ctx.backend->gemm(cfg, args);
  if (ctx.telemetry) {
    ctx.telemetry->record_gemm(ctx.backend->name(), args.M, args.N, args.K,
                               now_s() - t0);
    if (ctx.bit_accurate())
      ctx.telemetry->record_quantize(
          static_cast<uint64_t>(args.M) * args.K +
              static_cast<uint64_t>(args.K) * args.N,
          cfg.mul_fmt);
  }
}

/// Dispatches one pre-quantized-operand GEMM on the context's backend;
/// `fresh_quant_values` is how many operand words this call quantized anew
/// (the cached plane was not).
void dispatch_bits(const ComputeContext& ctx, const MacConfig& cfg,
                   const GemmBitsArgs& args, uint64_t fresh_quant_values) {
  const double t0 = ctx.telemetry ? now_s() : 0.0;
  ctx.backend->gemm_bits(cfg, args);
  if (ctx.telemetry) {
    ctx.telemetry->record_gemm(ctx.backend->name(), args.M, args.N, args.K,
                               now_s() - t0);
    ctx.telemetry->record_quantize(fresh_quant_values, cfg.mul_fmt);
  }
}

/// Dense decode of a quantized operand plane back to floats — the fallback
/// feeding backends without native gemm_bits (see gemm_dequantize for the
/// lossless-round-trip argument).
std::vector<float> decode_plane(const FpFormat& fmt, int rows, int cols,
                                const uint32_t* bits) {
  std::vector<float> out(static_cast<size_t>(rows) * cols);
  gemm_dequantize(fmt, rows, cols, bits, cols, out.data());
  return out;
}

/// dst[c * rows + r] = src[r * cols + c]: materializes the transpose of a
/// row-major rows x cols matrix (shared by the _nt/_tn entry points and
/// MatmulBatch's owned-transpose adds).
void transpose_into(float* dst, const float* src, int rows, int cols) {
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      dst[static_cast<size_t>(c) * rows + r] =
          src[static_cast<size_t>(r) * cols + c];
}

}  // namespace

void matmul(const ComputeContext& ctx, int M, int N, int K, const float* A,
            const float* B, float* C, bool accumulate, int seed_row_period,
            int seed_col_period) {
  GemmArgs args;
  args.M = M;
  args.N = N;
  args.K = K;
  args.A = A;
  args.lda = K;
  args.B = B;
  args.ldb = N;
  args.C = C;
  args.ldc = N;
  args.accumulate = accumulate;
  args.seed = ctx.seed;
  args.threads = ctx.threads;
  args.seed_row_period = seed_row_period;
  args.seed_col_period = seed_col_period;
  dispatch(ctx, args);
}

void matmul_qa(const ComputeContext& ctx, int M, int N, int K,
               const uint32_t* Aq, const float* B, float* C, bool accumulate,
               int seed_row_period, int seed_col_period) {
  assert(ctx.bit_accurate() && "quantized-operand matmul needs a MAC context");
  const MacConfig cfg = ctx.mac_config().normalized();
  if (!ctx.backend->supports_prequantized()) {
    const std::vector<float> a = decode_plane(cfg.mul_fmt, M, K, Aq);
    matmul(ctx, M, N, K, a.data(), B, C, accumulate, seed_row_period,
           seed_col_period);
    return;
  }
  std::vector<uint32_t> qb(static_cast<size_t>(K) * N);
  gemm_quantize(cfg.mul_fmt, K, N, B, N, qb.data(), ctx.threads);
  GemmBitsArgs args;
  args.M = M;
  args.N = N;
  args.K = K;
  args.Aq = Aq;
  args.lda = K;
  args.Bq = qb.data();
  args.ldb = N;
  args.C = C;
  args.ldc = N;
  args.accumulate = accumulate;
  args.seed = ctx.seed;
  args.threads = ctx.threads;
  args.seed_row_period = seed_row_period;
  args.seed_col_period = seed_col_period;
  // Only B was freshly quantized; the cached A plane was not.
  dispatch_bits(ctx, cfg, args, static_cast<uint64_t>(K) * N);
}

void matmul_qb(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const uint32_t* Bq, float* C, bool accumulate,
               int seed_row_period, int seed_col_period) {
  assert(ctx.bit_accurate() && "quantized-operand matmul needs a MAC context");
  const MacConfig cfg = ctx.mac_config().normalized();
  if (!ctx.backend->supports_prequantized()) {
    const std::vector<float> b = decode_plane(cfg.mul_fmt, K, N, Bq);
    matmul(ctx, M, N, K, A, b.data(), C, accumulate, seed_row_period,
           seed_col_period);
    return;
  }
  std::vector<uint32_t> qa(static_cast<size_t>(M) * K);
  gemm_quantize(cfg.mul_fmt, M, K, A, K, qa.data(), ctx.threads);
  GemmBitsArgs args;
  args.M = M;
  args.N = N;
  args.K = K;
  args.Aq = qa.data();
  args.lda = K;
  args.Bq = Bq;
  args.ldb = N;
  args.C = C;
  args.ldc = N;
  args.accumulate = accumulate;
  args.seed = ctx.seed;
  args.threads = ctx.threads;
  args.seed_row_period = seed_row_period;
  args.seed_col_period = seed_col_period;
  dispatch_bits(ctx, cfg, args, static_cast<uint64_t>(M) * K);
}

void matmul_nt(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const float* B_t, float* C, bool accumulate) {
  std::vector<float> B(static_cast<size_t>(K) * N);
  transpose_into(B.data(), B_t, N, K);
  matmul(ctx, M, N, K, A, B.data(), C, accumulate);
}

void matmul_tn(const ComputeContext& ctx, int M, int N, int K,
               const float* A_t, const float* B, float* C, bool accumulate) {
  std::vector<float> A(static_cast<size_t>(M) * K);
  transpose_into(A.data(), A_t, K, M);
  matmul(ctx, M, N, K, A.data(), B, C, accumulate);
}

void MatmulBatch::add(const ComputeContext& ctx, int M, int N, int K,
                      const float* A, const float* B, float* C,
                      bool accumulate) {
  assert(ctx.backend == base_.backend &&
         "every GEMM of a batch must target the base context's backend");
  GemmBatchItem item;
  item.cfg = ctx.mac_config().normalized();
  item.args.M = M;
  item.args.N = N;
  item.args.K = K;
  item.args.A = A;
  item.args.lda = K;
  item.args.B = B;
  item.args.ldb = N;
  item.args.C = C;
  item.args.ldc = N;
  item.args.accumulate = accumulate;
  item.args.seed = ctx.seed;
  item.args.threads = ctx.threads;
  items_.push_back(item);
}

void MatmulBatch::add_nt(const ComputeContext& ctx, int M, int N, int K,
                         const float* A, const float* B_t, float* C,
                         bool accumulate) {
  std::vector<float>& B = owned_.emplace_back(static_cast<size_t>(K) * N);
  transpose_into(B.data(), B_t, N, K);
  add(ctx, M, N, K, A, B.data(), C, accumulate);
}

void MatmulBatch::add_tn(const ComputeContext& ctx, int M, int N, int K,
                         const float* A_t, const float* B, float* C,
                         bool accumulate) {
  std::vector<float>& A = owned_.emplace_back(static_cast<size_t>(M) * K);
  transpose_into(A.data(), A_t, K, M);
  add(ctx, M, N, K, A.data(), B, C, accumulate);
}

void MatmulBatch::add_qa(const ComputeContext& ctx, int M, int N, int K,
                         const uint32_t* Aq, const float* B, float* C,
                         bool accumulate) {
  assert(ctx.bit_accurate() && "quantized-operand add needs a MAC context");
  add(ctx, M, N, K, /*A=*/nullptr, B, C, accumulate);
  items_.back().Aq = Aq;
}

void MatmulBatch::add_qb(const ComputeContext& ctx, int M, int N, int K,
                         const float* A, const uint32_t* Bq, float* C,
                         bool accumulate) {
  assert(ctx.bit_accurate() && "quantized-operand add needs a MAC context");
  add(ctx, M, N, K, A, /*B=*/nullptr, C, accumulate);
  items_.back().Bq = Bq;
}

void MatmulBatch::flush() {
  if (items_.empty()) return;
  assert(base_.backend && "ComputeContext must carry a backend");
  // Shard-scheduling backends expose cumulative counters; snapshot around
  // the dispatch and record the delta.
  const auto* shard_src =
      base_.telemetry ? dynamic_cast<const ShardStatsSource*>(base_.backend)
                      : nullptr;
  const ShardStatsSource::Stats before =
      shard_src ? shard_src->shard_stats() : ShardStatsSource::Stats{};
  const double t0 = base_.telemetry ? now_s() : 0.0;
  base_.backend->gemm_batch(items_.data(), items_.size());
  if (shard_src) {
    ShardStatsSource::Stats after = shard_src->shard_stats();
    after.migrations -= before.migrations;
    after.plane_bytes_quantized -= before.plane_bytes_quantized;
    for (size_t s = 0;
         s < after.planes_packed.size() && s < before.planes_packed.size();
         ++s)
      after.planes_packed[s] -= before.planes_packed[s];
    base_.telemetry->record_sharded(base_.backend->name(), after.migrations,
                                    after.planes_packed,
                                    after.plane_bytes_quantized);
  }
  if (base_.telemetry) {
    uint64_t macs = 0;
    // Fresh-quantization accounting, per item format (items of one batch
    // may run different policy passes). Cached planes (Aq/Bq) were not
    // quantized by this dispatch; on a batching backend a float B plane
    // repeated across items is packed once, so it counts once — except on
    // a shard-scheduling backend, which quantizes a shared plane once per
    // shard and reported the exact bytes through record_sharded above, so
    // its B planes are skipped here entirely.
    const bool dedup = base_.backend->supports_batch();
    std::vector<std::pair<FpFormat, uint64_t>> per_fmt;
    std::vector<std::tuple<const float*, int, int, int, FpFormat>> seen_b;
    auto count_quant = [&](const FpFormat& fmt, uint64_t values) {
      for (auto& [f, v] : per_fmt) {
        if (f == fmt) {
          v += values;
          return;
        }
      }
      per_fmt.emplace_back(fmt, values);
    };
    for (const GemmBatchItem& it : items_) {
      macs += static_cast<uint64_t>(it.args.M) * it.args.N * it.args.K;
      if (!base_.bit_accurate()) continue;
      const FpFormat fmt = it.cfg.normalized().mul_fmt;
      if (!it.Aq)
        count_quant(fmt, static_cast<uint64_t>(it.args.M) * it.args.K);
      if (!it.Bq && !shard_src) {
        const std::tuple<const float*, int, int, int, FpFormat> key{
            it.args.B, it.args.ldb, it.args.K, it.args.N, fmt};
        if (dedup &&
            std::find(seen_b.begin(), seen_b.end(), key) != seen_b.end())
          continue;
        if (dedup) seen_b.push_back(key);
        count_quant(fmt, static_cast<uint64_t>(it.args.K) * it.args.N);
      }
    }
    base_.telemetry->record_batch(base_.backend->name(), items_.size(), macs,
                                  now_s() - t0);
    for (const auto& [fmt, values] : per_fmt)
      base_.telemetry->record_quantize(values, fmt);
  }
  items_.clear();
  owned_.clear();
}

void add_inplace(Tensor& a, const Tensor& b) {
  assert(a.numel() == b.numel());
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

void scale_inplace(Tensor& a, float s) {
  for (int64_t i = 0; i < a.numel(); ++i) a[i] *= s;
}

Tensor transpose2d(const Tensor& x) {
  assert(x.ndim() == 2);
  Tensor t({x.dim(1), x.dim(0)});
  for (int i = 0; i < x.dim(0); ++i)
    for (int j = 0; j < x.dim(1); ++j) t.at(j, i) = x.at(i, j);
  return t;
}

}  // namespace srmac
