#include "tensor/tensor_ops.hpp"

#include <cassert>
#include <chrono>
#include <vector>

#include "fpemu/softfloat.hpp"
#include "mac/gemm.hpp"

namespace srmac {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Dispatches one float-operand GEMM on the context's backend, recording
/// the call into the telemetry sink when one is attached.
void dispatch(const ComputeContext& ctx, const GemmArgs& args) {
  assert(ctx.backend && "ComputeContext must carry a backend");
  const MacConfig cfg = ctx.mac_config().normalized();
  const double t0 = ctx.telemetry ? now_s() : 0.0;
  ctx.backend->gemm(cfg, args);
  if (ctx.telemetry) {
    ctx.telemetry->record_gemm(ctx.backend->name(), args.M, args.N, args.K,
                               now_s() - t0);
    if (ctx.bit_accurate())
      ctx.telemetry->record_quantize(
          static_cast<uint64_t>(args.M) * args.K +
              static_cast<uint64_t>(args.K) * args.N,
          cfg.mul_fmt);
  }
}

/// Dispatches one pre-quantized-operand GEMM on the context's backend;
/// `fresh_quant_values` is how many operand words this call quantized anew
/// (the cached plane was not).
void dispatch_bits(const ComputeContext& ctx, const MacConfig& cfg,
                   const GemmBitsArgs& args, uint64_t fresh_quant_values) {
  const double t0 = ctx.telemetry ? now_s() : 0.0;
  ctx.backend->gemm_bits(cfg, args);
  if (ctx.telemetry) {
    ctx.telemetry->record_gemm(ctx.backend->name(), args.M, args.N, args.K,
                               now_s() - t0);
    ctx.telemetry->record_quantize(fresh_quant_values, cfg.mul_fmt);
  }
}

/// Decodes a quantized operand plane back to floats — the fallback feeding
/// backends without native gemm_bits. Lossless round trip: the backend's
/// RN requantization of a value already on the format grid returns the
/// same bits.
std::vector<float> decode_plane(const FpFormat& fmt, int rows, int cols,
                                const uint32_t* bits) {
  std::vector<float> out(static_cast<size_t>(rows) * cols);
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<float>(SoftFloat::to_double(fmt, bits[i]));
  return out;
}

}  // namespace

void matmul(const ComputeContext& ctx, int M, int N, int K, const float* A,
            const float* B, float* C, bool accumulate) {
  GemmArgs args;
  args.M = M;
  args.N = N;
  args.K = K;
  args.A = A;
  args.lda = K;
  args.B = B;
  args.ldb = N;
  args.C = C;
  args.ldc = N;
  args.accumulate = accumulate;
  args.seed = ctx.seed;
  args.threads = ctx.threads;
  dispatch(ctx, args);
}

void matmul_qa(const ComputeContext& ctx, int M, int N, int K,
               const uint32_t* Aq, const float* B, float* C, bool accumulate) {
  assert(ctx.bit_accurate() && "quantized-operand matmul needs a MAC context");
  const MacConfig cfg = ctx.mac_config().normalized();
  if (!ctx.backend->supports_prequantized()) {
    const std::vector<float> a = decode_plane(cfg.mul_fmt, M, K, Aq);
    matmul(ctx, M, N, K, a.data(), B, C, accumulate);
    return;
  }
  std::vector<uint32_t> qb(static_cast<size_t>(K) * N);
  gemm_quantize(cfg.mul_fmt, K, N, B, N, qb.data(), ctx.threads);
  GemmBitsArgs args;
  args.M = M;
  args.N = N;
  args.K = K;
  args.Aq = Aq;
  args.lda = K;
  args.Bq = qb.data();
  args.ldb = N;
  args.C = C;
  args.ldc = N;
  args.accumulate = accumulate;
  args.seed = ctx.seed;
  args.threads = ctx.threads;
  // Only B was freshly quantized; the cached A plane was not.
  dispatch_bits(ctx, cfg, args, static_cast<uint64_t>(K) * N);
}

void matmul_qb(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const uint32_t* Bq, float* C, bool accumulate) {
  assert(ctx.bit_accurate() && "quantized-operand matmul needs a MAC context");
  const MacConfig cfg = ctx.mac_config().normalized();
  if (!ctx.backend->supports_prequantized()) {
    const std::vector<float> b = decode_plane(cfg.mul_fmt, K, N, Bq);
    matmul(ctx, M, N, K, A, b.data(), C, accumulate);
    return;
  }
  std::vector<uint32_t> qa(static_cast<size_t>(M) * K);
  gemm_quantize(cfg.mul_fmt, M, K, A, K, qa.data(), ctx.threads);
  GemmBitsArgs args;
  args.M = M;
  args.N = N;
  args.K = K;
  args.Aq = qa.data();
  args.lda = K;
  args.Bq = Bq;
  args.ldb = N;
  args.C = C;
  args.ldc = N;
  args.accumulate = accumulate;
  args.seed = ctx.seed;
  args.threads = ctx.threads;
  dispatch_bits(ctx, cfg, args, static_cast<uint64_t>(M) * K);
}

void matmul_nt(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const float* B_t, float* C, bool accumulate) {
  std::vector<float> B(static_cast<size_t>(K) * N);
  for (int n = 0; n < N; ++n)
    for (int k = 0; k < K; ++k)
      B[static_cast<size_t>(k) * N + n] = B_t[static_cast<size_t>(n) * K + k];
  matmul(ctx, M, N, K, A, B.data(), C, accumulate);
}

void matmul_tn(const ComputeContext& ctx, int M, int N, int K,
               const float* A_t, const float* B, float* C, bool accumulate) {
  std::vector<float> A(static_cast<size_t>(M) * K);
  for (int k = 0; k < K; ++k)
    for (int m = 0; m < M; ++m)
      A[static_cast<size_t>(m) * K + k] = A_t[static_cast<size_t>(k) * M + m];
  matmul(ctx, M, N, K, A.data(), B, C, accumulate);
}

void add_inplace(Tensor& a, const Tensor& b) {
  assert(a.numel() == b.numel());
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

void scale_inplace(Tensor& a, float s) {
  for (int64_t i = 0; i < a.numel(); ++i) a[i] *= s;
}

Tensor transpose2d(const Tensor& x) {
  assert(x.ndim() == 2);
  Tensor t({x.dim(1), x.dim(0)});
  for (int i = 0; i < x.dim(0); ++i)
    for (int j = 0; j < x.dim(1); ++j) t.at(j, i) = x.at(i, j);
  return t;
}

}  // namespace srmac
