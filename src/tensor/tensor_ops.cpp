#include "tensor/tensor_ops.hpp"

#include <cassert>
#include <vector>

#include "mac/gemm.hpp"

namespace srmac {

void matmul(const ComputeContext& ctx, int M, int N, int K, const float* A,
            const float* B, float* C, bool accumulate) {
  if (ctx.bit_accurate) {
    MacConfig cfg = ctx.mac;
    cfg.mul_fmt = ctx.mul_fmt();  // HFP8 swaps the format on backward GEMMs
    gemm_mac(cfg, M, N, K, A, K, B, N, C, N, accumulate, ctx.seed,
             ctx.threads);
  } else {
    gemm_ref(M, N, K, A, K, B, N, C, N, accumulate, ctx.threads);
  }
}

void matmul_qa(const ComputeContext& ctx, int M, int N, int K,
               const uint32_t* Aq, const float* B, float* C, bool accumulate) {
  assert(ctx.bit_accurate && "quantized-operand matmul needs a MAC context");
  MacConfig cfg = ctx.mac;
  cfg.mul_fmt = ctx.mul_fmt();
  const MacConfig c = cfg.normalized();
  std::vector<uint32_t> qb(static_cast<size_t>(K) * N);
  gemm_quantize(c.mul_fmt, K, N, B, N, qb.data(), ctx.threads);
  gemm_mac_bits(c, M, N, K, Aq, K, qb.data(), N, C, N, accumulate, ctx.seed,
                ctx.threads);
}

void matmul_qb(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const uint32_t* Bq, float* C, bool accumulate) {
  assert(ctx.bit_accurate && "quantized-operand matmul needs a MAC context");
  MacConfig cfg = ctx.mac;
  cfg.mul_fmt = ctx.mul_fmt();
  const MacConfig c = cfg.normalized();
  std::vector<uint32_t> qa(static_cast<size_t>(M) * K);
  gemm_quantize(c.mul_fmt, M, K, A, K, qa.data(), ctx.threads);
  gemm_mac_bits(c, M, N, K, qa.data(), K, Bq, N, C, N, accumulate, ctx.seed,
                ctx.threads);
}

void matmul_nt(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const float* B_t, float* C, bool accumulate) {
  std::vector<float> B(static_cast<size_t>(K) * N);
  for (int n = 0; n < N; ++n)
    for (int k = 0; k < K; ++k)
      B[static_cast<size_t>(k) * N + n] = B_t[static_cast<size_t>(n) * K + k];
  matmul(ctx, M, N, K, A, B.data(), C, accumulate);
}

void matmul_tn(const ComputeContext& ctx, int M, int N, int K,
               const float* A_t, const float* B, float* C, bool accumulate) {
  std::vector<float> A(static_cast<size_t>(M) * K);
  for (int k = 0; k < K; ++k)
    for (int m = 0; m < M; ++m)
      A[static_cast<size_t>(m) * K + k] = A_t[static_cast<size_t>(k) * M + m];
  matmul(ctx, M, N, K, A.data(), B, C, accumulate);
}

void add_inplace(Tensor& a, const Tensor& b) {
  assert(a.numel() == b.numel());
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

void scale_inplace(Tensor& a, float s) {
  for (int64_t i = 0; i < a.numel(); ++i) a[i] *= s;
}

Tensor transpose2d(const Tensor& x) {
  assert(x.ndim() == 2);
  Tensor t({x.dim(1), x.dim(0)});
  for (int i = 0; i < x.dim(0); ++i)
    for (int j = 0; j < x.dim(1); ++j) t.at(j, i) = x.at(i, j);
  return t;
}

}  // namespace srmac
