#pragma once

#include "engine/compute_context.hpp"
#include "tensor/tensor.hpp"

namespace srmac {

/// C[MxN] = A[MxK] * B[KxN] (+C), through the context's compute backend.
/// Every multiply-accumulate of DNN training (FWD and BWD GEMMs) passes
/// through here, as in the paper's Sec. IV emulation flow: the context's
/// backend executes, its policy decides the per-pass quantization, and its
/// telemetry sink (when present) records the dispatch.
void matmul(const ComputeContext& ctx, int M, int N, int K, const float* A,
            const float* B, float* C, bool accumulate = false);

/// C = A * B^T and C = A^T * B conveniences for the backward GEMMs.
/// (Implemented by materializing the transpose; the MAC chain order over k
/// matches the forward convention.)
void matmul_nt(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const float* B_t /*NxK*/, float* C, bool accumulate = false);
void matmul_tn(const ComputeContext& ctx, int M, int N, int K,
               const float* A_t /*KxM*/, const float* B, float* C,
               bool accumulate = false);

/// matmul with one operand already quantized to ctx.quant_fmt() bit
/// patterns (row-major, MxK resp. KxN) — the layers' cached weight planes.
/// Only valid on bit-accurate contexts. Backends without native
/// pre-quantized support receive the plane decoded back to floats; their
/// internal requantization is lossless on already-representable values, so
/// results match the float path bit for bit.
void matmul_qa(const ComputeContext& ctx, int M, int N, int K,
               const uint32_t* Aq, const float* B, float* C,
               bool accumulate = false);
void matmul_qb(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const uint32_t* Bq, float* C, bool accumulate = false);

/// Elementwise helpers used by the layers (always FP32: the paper quantizes
/// the GEMM inputs/accumulations, not pointwise math).
void add_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& a, float s);
Tensor transpose2d(const Tensor& x);

}  // namespace srmac
