#pragma once

#include "mac/mac_config.hpp"
#include "tensor/tensor.hpp"

namespace srmac {

/// How the training math executes: the FP32 reference path, or the
/// bit-accurate MAC emulation (the paper's PyTorch/CUDA flow, here in C++).
struct ComputeContext {
  bool bit_accurate = false;  ///< route GEMMs through the MAC models
  MacConfig mac;              ///< MAC configuration when bit_accurate
  uint64_t seed = 0x5EED;     ///< base seed for per-element LFSRs
  int threads = 0;            ///< 0 = hardware concurrency

  /// HFP8 [7]: quantize forward GEMMs in mac.mul_fmt (E4M3 under the
  /// scheme) but backward GEMMs in `mul_fmt_bwd` (E5M2: more range for
  /// gradients). `backward_pass` is set once by the trainer at the
  /// top-level backward call and propagates through fork().
  bool hfp8 = false;
  FpFormat mul_fmt_bwd = kFp8E5M2;
  bool backward_pass = false;

  /// FP32 baseline context.
  static ComputeContext fp32() { return {}; }
  /// Bit-accurate context for a MAC configuration.
  static ComputeContext emulated(const MacConfig& cfg, uint64_t seed = 0x5EED) {
    ComputeContext c;
    c.bit_accurate = true;
    c.mac = cfg;
    c.seed = seed;
    return c;
  }
  /// Derives a context with a decorrelated seed (per layer / per pass).
  ComputeContext fork(uint64_t salt) const {
    ComputeContext c = *this;
    c.seed = seed * 0x9E3779B97F4A7C15ull + salt;
    return c;
  }

  /// Marks the context as inside the backward pass (HFP8 format switch).
  ComputeContext backward() const {
    ComputeContext c = *this;
    c.backward_pass = true;
    return c;
  }

  /// The multiplier-input format this context's GEMMs quantize into.
  const FpFormat& mul_fmt() const {
    return hfp8 && backward_pass ? mul_fmt_bwd : mac.mul_fmt;
  }

  /// mul_fmt() with the context's subnormal flag applied — the exact format
  /// gemm_mac quantizes operands into (cached weight planes must match it).
  FpFormat quant_fmt() const { return mul_fmt().with_subnormals(mac.subnormals); }
};

/// C[MxN] = A[MxK] * B[KxN] (+C), through the context's compute path.
/// Every multiply-accumulate of DNN training (FWD and BWD GEMMs) passes
/// through here, as in the paper's Sec. IV emulation flow.
void matmul(const ComputeContext& ctx, int M, int N, int K, const float* A,
            const float* B, float* C, bool accumulate = false);

/// C = A * B^T and C = A^T * B conveniences for the backward GEMMs.
/// (Implemented by materializing the transpose; the MAC chain order over k
/// matches the forward convention.)
void matmul_nt(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const float* B_t /*NxK*/, float* C, bool accumulate = false);
void matmul_tn(const ComputeContext& ctx, int M, int N, int K,
               const float* A_t /*KxM*/, const float* B, float* C,
               bool accumulate = false);

/// matmul with one operand already quantized to ctx.quant_fmt() bit
/// patterns (row-major, MxK resp. KxN) — the layers' cached weight planes.
/// Only valid on bit-accurate contexts; FP32 contexts keep the float path.
void matmul_qa(const ComputeContext& ctx, int M, int N, int K,
               const uint32_t* Aq, const float* B, float* C,
               bool accumulate = false);
void matmul_qb(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const uint32_t* Bq, float* C, bool accumulate = false);

/// Elementwise helpers used by the layers (always FP32: the paper quantizes
/// the GEMM inputs/accumulations, not pointwise math).
void add_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& a, float s);
Tensor transpose2d(const Tensor& x);

}  // namespace srmac
