#pragma once

#include <deque>
#include <vector>

#include "engine/compute_context.hpp"
#include "tensor/tensor.hpp"

namespace srmac {

/// C[MxN] = A[MxK] * B[KxN] (+C), through the context's compute backend.
/// Every multiply-accumulate of DNN training (FWD and BWD GEMMs) passes
/// through here, as in the paper's Sec. IV emulation flow: the context's
/// backend executes, its policy decides the per-pass quantization, and its
/// telemetry sink (when present) records the dispatch.
/// The trailing seed periods implement grouped same-shape execution
/// (docs/SERVING.md): when non-zero they fold the per-element seed
/// coordinates modulo the period, so several independent problems
/// concatenated into one wide GEMM keep the exact seeds of their standalone
/// dispatches. Pass them only when ctx.backend->supports_grouped(); the
/// defaults (0, 0) are the identity and change nothing.
void matmul(const ComputeContext& ctx, int M, int N, int K, const float* A,
            const float* B, float* C, bool accumulate = false,
            int seed_row_period = 0, int seed_col_period = 0);

/// C = A * B^T and C = A^T * B conveniences for the backward GEMMs.
/// (Implemented by materializing the transpose; the MAC chain order over k
/// matches the forward convention.)
void matmul_nt(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const float* B_t /*NxK*/, float* C, bool accumulate = false);
void matmul_tn(const ComputeContext& ctx, int M, int N, int K,
               const float* A_t /*KxM*/, const float* B, float* C,
               bool accumulate = false);

/// matmul with one operand already quantized to ctx.quant_fmt() bit
/// patterns (row-major, MxK resp. KxN) — the layers' cached weight planes.
/// Only valid on bit-accurate contexts. Backends without native
/// pre-quantized support receive the plane decoded back to floats; their
/// internal requantization is lossless on already-representable values, so
/// results match the float path bit for bit.
void matmul_qa(const ComputeContext& ctx, int M, int N, int K,
               const uint32_t* Aq, const float* B, float* C,
               bool accumulate = false, int seed_row_period = 0,
               int seed_col_period = 0);
void matmul_qb(const ComputeContext& ctx, int M, int N, int K, const float* A,
               const uint32_t* Bq, float* C, bool accumulate = false,
               int seed_row_period = 0, int seed_col_period = 0);

/// Collects independent GEMMs and submits them in one
/// MatmulBackend::gemm_batch dispatch — the batch-submission front end of
/// the "batched" backend. Each added GEMM carries its *own* context's
/// quantization pass and fork seed (a layer's weight-gradient and
/// data-gradient GEMMs run different policy passes), so results are
/// bit-identical to dispatching the same GEMMs sequentially; what changes
/// is scheduling: the backend shards whole problems across the thread pool
/// and packs shared operand planes once. All contexts must share the base
/// context's backend, and operands must stay alive until flush() (the _nt /
/// _tn variants materialize and own their transposes internally).
class MatmulBatch {
 public:
  /// `base` supplies the backend and telemetry sink; it must outlive the
  /// batch. Deferred GEMMs run at flush() (also called by the destructor).
  explicit MatmulBatch(const ComputeContext& base) : base_(base) {}
  MatmulBatch(const MatmulBatch&) = delete;
  MatmulBatch& operator=(const MatmulBatch&) = delete;
  ~MatmulBatch() { flush(); }

  /// Defers C[MxN] = A[MxK] * B[KxN] (+C) under `ctx`'s pass/seed.
  void add(const ComputeContext& ctx, int M, int N, int K, const float* A,
           const float* B, float* C, bool accumulate = false);

  /// add() with B supplied transposed (NxK) resp. A supplied transposed
  /// (KxM); the transpose is materialized into batch-owned storage.
  void add_nt(const ComputeContext& ctx, int M, int N, int K, const float* A,
              const float* B_t, float* C, bool accumulate = false);
  void add_tn(const ComputeContext& ctx, int M, int N, int K,
              const float* A_t, const float* B, float* C,
              bool accumulate = false);

  /// add() with one operand already quantized to ctx.quant_fmt() bit
  /// patterns — the layers' cached weight planes, so a batched backward
  /// does not requantize weights the cache already holds. Only valid on
  /// bit-accurate contexts (as matmul_qa/matmul_qb).
  void add_qa(const ComputeContext& ctx, int M, int N, int K,
              const uint32_t* Aq, const float* B, float* C,
              bool accumulate = false);
  void add_qb(const ComputeContext& ctx, int M, int N, int K, const float* A,
              const uint32_t* Bq, float* C, bool accumulate = false);

  size_t size() const { return items_.size(); }

  /// Batch-owned float scratch the caller can stage an operand into before
  /// add()-ing it — e.g. a layer deferring its weight-gradient GEMM past
  /// its own scope (Sequential's cross-layer bucketing) parks the reshaped
  /// gradient here. Freed at flush() with everything else the batch owns.
  float* scratch(size_t n) { return owned_.emplace_back(n).data(); }

  /// Floats currently staged in batch-owned storage (scratch plus the
  /// materialized transposes of _nt/_tn adds) — what a bucketing caller
  /// bounds to keep peak memory flat when the deferred operands are large
  /// (conv im2col planes dwarf the problem count as a measure).
  size_t staged_floats() const {
    size_t n = 0;
    for (const auto& v : owned_) n += v.size();
    return n;
  }

  /// Dispatches every deferred GEMM through the base backend's gemm_batch
  /// (recording one batch plus per-problem counters into telemetry; on a
  /// shard-scheduling backend also the shard_migrations /
  /// planes_packed_per_shard deltas), then clears the batch for reuse.
  void flush();

 private:
  ComputeContext base_;
  std::vector<GemmBatchItem> items_;
  std::deque<std::vector<float>> owned_;  ///< materialized transposes
};

/// Elementwise helpers used by the layers (always FP32: the paper quantizes
/// the GEMM inputs/accumulations, not pointwise math).
void add_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& a, float s);
Tensor transpose2d(const Tensor& x);

}  // namespace srmac
