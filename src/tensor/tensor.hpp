#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <vector>

namespace srmac {

/// Minimal dense float tensor, row-major, shapes up to 4-D (N, C, H, W).
/// This is the substrate under the NN layers; all heavy math funnels into
/// the GEMM dispatcher (tensor_ops.hpp) so that the bit-accurate MAC models
/// see every multiply-accumulate of the training computation.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(count_(shape_)), fill) {}
  Tensor(std::initializer_list<int> shape, float fill = 0.0f)
      : Tensor(std::vector<int>(shape), fill) {}

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_.at(static_cast<size_t>(i)); }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Element access for 2-D (i, j) and 4-D (n, c, h, w) layouts.
  float& at(int i, int j) {
    assert(ndim() == 2);
    return data_[static_cast<size_t>(i) * dim(1) + j];
  }
  float at(int i, int j) const {
    assert(ndim() == 2);
    return data_[static_cast<size_t>(i) * dim(1) + j];
  }
  float& at(int n, int c, int h, int w) {
    assert(ndim() == 4);
    return data_[((static_cast<size_t>(n) * dim(1) + c) * dim(2) + h) * dim(3) + w];
  }
  float at(int n, int c, int h, int w) const {
    assert(ndim() == 4);
    return data_[((static_cast<size_t>(n) * dim(1) + c) * dim(2) + h) * dim(3) + w];
  }

  /// Reinterprets the buffer with a new shape of equal element count.
  Tensor reshaped(std::vector<int> new_shape) const {
    Tensor t;
    t.shape_ = std::move(new_shape);
    assert(count_(t.shape_) == numel());
    t.data_ = data_;
    return t;
  }

  void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }
  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

 private:
  static int64_t count_(const std::vector<int>& s) {
    return std::accumulate(s.begin(), s.end(), int64_t{1},
                           [](int64_t a, int b) { return a * b; });
  }
  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace srmac
