#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstring>

namespace srmac {

namespace {

/// First output index y with y*stride - pad + k >= 0 (clamped to [0, o]).
inline int interior_begin(int pad, int k, int stride, int o) {
  const int num = pad - k;
  const int y = num <= 0 ? 0 : (num + stride - 1) / stride;
  return std::min(y, o);
}

/// One past the last output index y with y*stride - pad + k < limit.
inline int interior_end(int limit, int pad, int k, int stride, int o) {
  const int num = limit + pad - k;  // need y*stride < num
  const int y = num <= 0 ? 0 : (num - 1) / stride + 1;
  return std::clamp(y, 0, o);
}

}  // namespace

void im2col(const float* img, int C, int H, int W, int kh, int kw, int stride,
            int pad, float* cols, int64_t row_stride) {
  const int oh = conv_out_dim(H, kh, stride, pad);
  const int ow = conv_out_dim(W, kw, stride, pad);
  int row = 0;
  for (int c = 0; c < C; ++c) {
    const float* src = img + static_cast<size_t>(c) * H * W;
    for (int ki = 0; ki < kh; ++ki) {
      // Rows of the output with the source scanline in bounds.
      const int y0 = interior_begin(pad, ki, stride, oh);
      const int y1 = interior_end(H, pad, ki, stride, oh);
      for (int kj = 0; kj < kw; ++kj, ++row) {
        float* out = cols + static_cast<int64_t>(row) * row_stride;
        const int x0 = interior_begin(pad, kj, stride, ow);
        const int x1 = interior_end(W, pad, kj, stride, ow);
        // Top / bottom padding rows are all zero.
        if (y0 > 0)
          std::memset(out, 0, sizeof(float) * static_cast<size_t>(y0) * ow);
        if (y1 < oh)
          std::memset(out + static_cast<size_t>(y1) * ow, 0,
                      sizeof(float) * static_cast<size_t>(oh - y1) * ow);
        for (int y = y0; y < y1; ++y) {
          const int iy = y * stride - pad + ki;
          const float* line = src + static_cast<size_t>(iy) * W;
          float* dst = out + static_cast<size_t>(y) * ow;
          // Left / right padding, then the in-bounds interior with no
          // per-pixel bounds checks (memcpy when the window is dense).
          for (int x = 0; x < x0; ++x) dst[x] = 0.0f;
          if (stride == 1) {
            std::memcpy(dst + x0, line + (x0 - pad + kj),
                        sizeof(float) * static_cast<size_t>(x1 - x0));
          } else {
            const float* in = line + (static_cast<int64_t>(x0) * stride - pad + kj);
            for (int x = x0; x < x1; ++x, in += stride) dst[x] = *in;
          }
          for (int x = x1; x < ow; ++x) dst[x] = 0.0f;
        }
      }
    }
  }
}

void col2im_accumulate(const float* cols, int C, int H, int W, int kh, int kw,
                       int stride, int pad, float* img, int64_t row_stride) {
  const int oh = conv_out_dim(H, kh, stride, pad);
  const int ow = conv_out_dim(W, kw, stride, pad);
  int row = 0;
  for (int c = 0; c < C; ++c) {
    float* dst_ch = img + static_cast<size_t>(c) * H * W;
    for (int ki = 0; ki < kh; ++ki) {
      const int y0 = interior_begin(pad, ki, stride, oh);
      const int y1 = interior_end(H, pad, ki, stride, oh);
      for (int kj = 0; kj < kw; ++kj, ++row) {
        const float* in = cols + static_cast<int64_t>(row) * row_stride;
        const int x0 = interior_begin(pad, kj, stride, ow);
        const int x1 = interior_end(W, pad, kj, stride, ow);
        for (int y = y0; y < y1; ++y) {
          const int iy = y * stride - pad + ki;
          float* line = dst_ch + static_cast<size_t>(iy) * W;
          const float* src = in + static_cast<size_t>(y) * ow;
          if (stride == 1) {
            float* out = line + (x0 - pad + kj);
            for (int x = x0; x < x1; ++x) out[x - x0] += src[x];
          } else {
            float* out = line + (static_cast<int64_t>(x0) * stride - pad + kj);
            for (int x = x0; x < x1; ++x, out += stride) *out += src[x];
          }
        }
      }
    }
  }
}

void col2im(const float* cols, int C, int H, int W, int kh, int kw, int stride,
            int pad, float* img) {
  const int oh = conv_out_dim(H, kh, stride, pad);
  const int ow = conv_out_dim(W, kw, stride, pad);
  std::memset(img, 0, sizeof(float) * static_cast<size_t>(C) * H * W);
  col2im_accumulate(cols, C, H, W, kh, kw, stride, pad, img,
                    static_cast<int64_t>(oh) * ow);
}

}  // namespace srmac
