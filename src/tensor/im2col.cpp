#include "tensor/im2col.hpp"

#include <cstring>

namespace srmac {

void im2col(const float* img, int C, int H, int W, int kh, int kw, int stride,
            int pad, float* cols) {
  const int oh = conv_out_dim(H, kh, stride, pad);
  const int ow = conv_out_dim(W, kw, stride, pad);
  const int cols_w = oh * ow;
  int row = 0;
  for (int c = 0; c < C; ++c) {
    for (int ki = 0; ki < kh; ++ki) {
      for (int kj = 0; kj < kw; ++kj, ++row) {
        float* out = cols + static_cast<size_t>(row) * cols_w;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * stride - pad + ki;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * stride - pad + kj;
            out[y * ow + x] =
                (iy >= 0 && iy < H && ix >= 0 && ix < W)
                    ? img[(static_cast<size_t>(c) * H + iy) * W + ix]
                    : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, int C, int H, int W, int kh, int kw, int stride,
            int pad, float* img) {
  const int oh = conv_out_dim(H, kh, stride, pad);
  const int ow = conv_out_dim(W, kw, stride, pad);
  const int cols_w = oh * ow;
  std::memset(img, 0, sizeof(float) * static_cast<size_t>(C) * H * W);
  int row = 0;
  for (int c = 0; c < C; ++c) {
    for (int ki = 0; ki < kh; ++ki) {
      for (int kj = 0; kj < kw; ++kj, ++row) {
        const float* in = cols + static_cast<size_t>(row) * cols_w;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * stride - pad + ki;
          if (iy < 0 || iy >= H) continue;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * stride - pad + kj;
            if (ix < 0 || ix >= W) continue;
            img[(static_cast<size_t>(c) * H + iy) * W + ix] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace srmac
