#pragma once

#include "fpemu/format.hpp"
#include "tensor/tensor.hpp"

namespace srmac {

/// Quantizes a tensor element-wise into `fmt` and back to float (RN).
/// Used by tests and the quantization-error ablations; the GEMM path
/// quantizes internally and does not need this.
Tensor quantize_dequantize(const FpFormat& fmt, const Tensor& x);

/// Largest finite magnitude representable in `fmt` (for loss-scaling
/// overflow checks and range studies).
double max_finite(const FpFormat& fmt);

/// Fraction of elements that would flush to zero (underflow the normal/
/// subnormal range) or saturate when cast into `fmt` — the diagnostics the
/// paper's loss-scaling strategy is driven by.
struct QuantStats {
  double underflow_frac = 0.0;
  double overflow_frac = 0.0;
  double mean_abs_rel_err = 0.0;
};
QuantStats quantization_stats(const FpFormat& fmt, const Tensor& x);

}  // namespace srmac
