#include "tensor/quant.hpp"

#include <cmath>

#include "fpemu/softfloat.hpp"

namespace srmac {

Tensor quantize_dequantize(const FpFormat& fmt, const Tensor& x) {
  Tensor out = x;
  for (int64_t i = 0; i < x.numel(); ++i) {
    out[i] = static_cast<float>(SoftFloat::to_double(
        fmt, SoftFloat::from_double(fmt, static_cast<double>(x[i]))));
  }
  return out;
}

double max_finite(const FpFormat& fmt) {
  return SoftFloat::to_double(fmt, fmt.max_finite_bits());
}

QuantStats quantization_stats(const FpFormat& fmt, const Tensor& x) {
  QuantStats s;
  int64_t nonzero = 0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const double v = static_cast<double>(x[i]);
    if (v == 0.0) continue;
    ++nonzero;
    const double q = SoftFloat::to_double(
        fmt, SoftFloat::from_double(fmt, v));
    if (q == 0.0) {
      s.underflow_frac += 1;
      s.mean_abs_rel_err += 1;
      continue;
    }
    if (std::isinf(q)) {
      s.overflow_frac += 1;
      s.mean_abs_rel_err += 1;
      continue;
    }
    s.mean_abs_rel_err += std::fabs(q - v) / std::fabs(v);
  }
  if (nonzero > 0) {
    s.underflow_frac /= static_cast<double>(nonzero);
    s.overflow_frac /= static_cast<double>(nonzero);
    s.mean_abs_rel_err /= static_cast<double>(nonzero);
  }
  return s;
}

}  // namespace srmac
