#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace srmac {

/// im2col: unfolds (C, H, W) patches of one image into columns so that a
/// convolution becomes a GEMM (the paper's GEMM-centric training view).
/// Output layout: rows = C*kh*kw, cols = out_h*out_w; consecutive rows are
/// `row_stride` floats apart (pass out_h*out_w for a dense matrix, or the
/// batched-GEMM pitch to scatter one sample's rows into a shared panel
/// without an intermediate copy).
///
/// The interior of each row — output positions whose source pixel is in
/// bounds — is written by a branch-free inner loop (a straight memcpy when
/// stride == 1); padding is materialized only on the edges.
void im2col(const float* img, int C, int H, int W, int kh, int kw, int stride,
            int pad, float* cols, int64_t row_stride);

inline int conv_out_dim(int in, int k, int stride, int pad) {
  return (in + 2 * pad - k) / stride + 1;
}

inline void im2col(const float* img, int C, int H, int W, int kh, int kw,
                   int stride, int pad, float* cols) {
  im2col(img, C, H, W, kh, kw, stride, pad, cols,
         static_cast<int64_t>(conv_out_dim(H, kh, stride, pad)) *
             conv_out_dim(W, kw, stride, pad));
}

/// col2im: the adjoint scatter-add of im2col, used by the convolution
/// backward pass to accumulate input gradients. The accumulate form adds
/// into `img` as-is (callers zero or reuse it) and reads strided rows like
/// the im2col above; the dense overload zeroes `img` first (the original
/// contract). Both hoist the in-bounds interior out of the per-pixel
/// bounds checks.
void col2im_accumulate(const float* cols, int C, int H, int W, int kh, int kw,
                       int stride, int pad, float* img, int64_t row_stride);
void col2im(const float* cols, int C, int H, int W, int kh, int kw, int stride,
            int pad, float* img);

}  // namespace srmac
