#pragma once

#include "tensor/tensor.hpp"

namespace srmac {

/// im2col: unfolds (C, H, W) patches of one image into columns so that a
/// convolution becomes a GEMM (the paper's GEMM-centric training view).
/// Output layout: rows = C*kh*kw, cols = out_h*out_w.
void im2col(const float* img, int C, int H, int W, int kh, int kw, int stride,
            int pad, float* cols);

/// col2im: the adjoint scatter-add of im2col, used by the convolution
/// backward pass to accumulate input gradients.
void col2im(const float* cols, int C, int H, int W, int kh, int kw, int stride,
            int pad, float* img);

inline int conv_out_dim(int in, int k, int stride, int pad) {
  return (in + 2 * pad - k) / stride + 1;
}

}  // namespace srmac
