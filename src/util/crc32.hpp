#pragma once

#include <cstddef>
#include <cstdint>

namespace srmac {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
/// check stamped on every checkpoint tensor record (src/io/checkpoint.hpp)
/// and every tensor payload crossing the wire protocol
/// (src/net/wire_format.hpp), so corruption is caught at each hop instead
/// of surfacing as silently wrong bits downstream.
///
/// `seed` is the running state for incremental use: pass the previous
/// call's return value to continue a checksum across chunks (the streaming
/// checkpoint parser checksums tensors as it reads them). Start from 0.
uint32_t crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace srmac
