#include "util/crc32.hpp"

#include <array>

namespace srmac {

namespace {

/// Byte-at-a-time table for the reflected IEEE polynomial, built once at
/// first use. A table-driven CRC runs at ~1 GB/s — invisible next to the
/// file/socket I/O it guards, so no slice-by-8 cleverness is warranted.
const std::array<uint32_t, 256>& crc_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t crc32(const void* data, size_t len, uint32_t seed) {
  const auto& table = crc_table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace srmac
