#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace srmac {

/// Worker-shard layout detected once per process: the number of NUMA nodes
/// (from /sys/devices/system/node on Linux) and the CPUs each contributes.
/// Hosts without that sysfs tree — or with a single node — report one
/// shard; the scheduling then degrades to the plain pool.
struct ShardTopology {
  int shards = 1;                   ///< detected shard count (>= 1)
  bool from_sysfs = false;          ///< true when /sys/devices/system/node was read
  std::vector<int> cpus_per_shard;  ///< CPUs per detected node (empty on fallback)
};

/// Parses a sysfs cpulist string ("0-3,8,10-11") into a CPU count.
/// Malformed input counts the entries it can parse; exposed for tests.
int parse_cpulist_count(const std::string& list);

/// Persistent work-stealing thread pool shared by the emulation engine.
///
/// The seed implementation spawned fresh std::threads on every GEMM call;
/// at emulation step costs of tens of nanoseconds that start-up latency
/// dominated small and medium problem sizes. This pool starts its workers
/// once (lazily, on first use) and keeps them parked on a condition
/// variable between calls. Each worker owns a deque of chunks; a worker
/// that drains its own deque steals from the back of its siblings', so
/// uneven chunk costs (e.g. GEMM row blocks with different special-value
/// densities) rebalance automatically.
///
/// parallel_for is the only scheduling primitive the engine needs: it
/// splits an index range into chunks, distributes them across the workers
/// and the calling thread, and blocks until every chunk has run. Results
/// must not depend on execution order — all users of the pool derive
/// per-element seeds, so outputs are identical at any thread count.
class ThreadPool {
 public:
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// The process-wide pool (hardware_concurrency - 1 workers; the caller of
  /// parallel_for is the remaining participant). Created on first use.
  static ThreadPool& global();

  /// Maximum number of threads that can participate in one parallel_for
  /// (workers + the calling thread).
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(lo, hi) over disjoint chunks covering [begin, end), on up to
  /// `max_threads` threads (0 = no cap), with at least `grain` indices per
  /// chunk. Blocks until the whole range has been processed. Calls from
  /// inside a pool task run inline (no nested parallelism).
  void parallel_for(int64_t begin, int64_t end,
                    const std::function<void(int64_t, int64_t)>& body,
                    int max_threads = 0, int64_t grain = 1);

  /// The NUMA layout detected from /sys/devices/system/node (computed on
  /// first call, then cached). Used as the default shard count of
  /// parallel_for_sharded and the "sharded" compute backend.
  static const ShardTopology& topology();

  /// Overrides the default shard count (the --shards=N / SRMAC_SHARDS=N
  /// knob). 0 restores auto (env, then detected topology). Takes effect on
  /// the next sharded dispatch; in-flight dispatches are unaffected.
  static void set_default_shards(int shards);

  /// Shard count sharded dispatches use when the caller passes 0:
  /// set_default_shards override > SRMAC_SHARDS env > detected topology.
  static int default_shards();

  /// Counters of one sharded dispatch.
  struct ShardStats {
    uint64_t migrations = 0;  ///< items executed off their routed shard
  };

  /// Runs item(i) exactly once for each i in [0, count). Items are routed
  /// to `nshards` shard queues by shard_of(i) (reduced mod nshards;
  /// nshards <= 0 means default_shards()). Each participating thread homes
  /// on one shard, drains that queue first, and steals from other shards
  /// only when its own runs dry — whole items migrate, never fractions —
  /// so shard-local state (the sharded backend's packed B planes) stays
  /// with the threads that populated it. Item bodies must not depend on
  /// execution order or placement; `stats`, when non-null, receives the
  /// cross-shard steal count of this dispatch.
  void parallel_for_sharded(int64_t count, int nshards,
                            const std::function<void(int64_t)>& item,
                            const std::function<int(int64_t)>& shard_of,
                            ShardStats* stats = nullptr, int max_threads = 0);

 private:
  explicit ThreadPool(int workers);
  struct State;  // queues, synchronization (kept out of the header)

  void worker_loop(int id);

  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

}  // namespace srmac
