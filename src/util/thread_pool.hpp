#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace srmac {

/// Persistent work-stealing thread pool shared by the emulation engine.
///
/// The seed implementation spawned fresh std::threads on every GEMM call;
/// at emulation step costs of tens of nanoseconds that start-up latency
/// dominated small and medium problem sizes. This pool starts its workers
/// once (lazily, on first use) and keeps them parked on a condition
/// variable between calls. Each worker owns a deque of chunks; a worker
/// that drains its own deque steals from the back of its siblings', so
/// uneven chunk costs (e.g. GEMM row blocks with different special-value
/// densities) rebalance automatically.
///
/// parallel_for is the only scheduling primitive the engine needs: it
/// splits an index range into chunks, distributes them across the workers
/// and the calling thread, and blocks until every chunk has run. Results
/// must not depend on execution order — all users of the pool derive
/// per-element seeds, so outputs are identical at any thread count.
class ThreadPool {
 public:
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// The process-wide pool (hardware_concurrency - 1 workers; the caller of
  /// parallel_for is the remaining participant). Created on first use.
  static ThreadPool& global();

  /// Maximum number of threads that can participate in one parallel_for
  /// (workers + the calling thread).
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(lo, hi) over disjoint chunks covering [begin, end), on up to
  /// `max_threads` threads (0 = no cap), with at least `grain` indices per
  /// chunk. Blocks until the whole range has been processed. Calls from
  /// inside a pool task run inline (no nested parallelism).
  void parallel_for(int64_t begin, int64_t end,
                    const std::function<void(int64_t, int64_t)>& body,
                    int max_threads = 0, int64_t grain = 1);

 private:
  explicit ThreadPool(int workers);
  struct State;  // queues, synchronization (kept out of the header)

  void worker_loop(int id);

  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

}  // namespace srmac
