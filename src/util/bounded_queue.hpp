#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace srmac {

/// Outcome of a deadline-bounded push (BoundedQueue::push_for): admitted,
/// out of time, or refused because the queue closed. The serving stack maps
/// kTimeout to ServeError::kDeadline and kClosed to ServeError::kStopped.
enum class QueuePushResult { kOk, kTimeout, kClosed };

/// Bounded multi-producer/multi-consumer queue — the admission-control
/// primitive under the serving stack (docs/SERVING.md). A full queue blocks
/// (or rejects, for try_push) producers instead of growing without bound,
/// so a burst of clients back-pressures at the submission edge rather than
/// ballooning memory inside the server.
///
/// close() ends the stream: producers are refused from that point on, but
/// consumers keep draining whatever was admitted — pop() returns
/// std::nullopt only once the queue is both closed and empty, so no
/// accepted element is ever dropped. All operations are safe from any
/// thread; a mutex plus two condition variables (one per direction) keeps
/// the implementation obviously correct under ThreadSanitizer rather than
/// cleverly lock-free.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (and drops `v`) when the
  /// queue was closed before space became available.
  bool push(T v) {
    std::unique_lock<std::mutex> lk(m_);
    space_cv_.wait(lk, [&] { return closed_ || q_.size() < capacity_; });
    if (closed_) return false;
    q_.push_back(std::move(v));
    lk.unlock();
    item_cv_.notify_one();
    return true;
  }

  /// Deadline-aware admission: blocks while full, but for at most
  /// timeout_us of real time. On kTimeout and kClosed `v` is left untouched
  /// so the caller can retry elsewhere or fail the request upward — the
  /// primitive under per-request deadlines at the submission edge.
  QueuePushResult push_for(T& v, uint64_t timeout_us) {
    std::unique_lock<std::mutex> lk(m_);
    if (timeout_us == 0) {
      // An exhausted budget answers immediately — no wait_for call, whose
      // zero-duration path still costs a timed sleep on some libstdc++
      // builds. Callers admitting with an already-expired deadline (the
      // serving stack does, to report kDeadline rather than guess) get the
      // full-queue verdict at try_push speed.
      if (closed_) return QueuePushResult::kClosed;
      if (q_.size() >= capacity_) return QueuePushResult::kTimeout;
    } else if (!space_cv_.wait_for(
                   lk, std::chrono::microseconds(timeout_us),
                   [&] { return closed_ || q_.size() < capacity_; })) {
      return QueuePushResult::kTimeout;
    }
    if (closed_) return QueuePushResult::kClosed;
    q_.push_back(std::move(v));
    lk.unlock();
    item_cv_.notify_one();
    return QueuePushResult::kOk;
  }

  /// Non-blocking push; false when full or closed (`v` is left untouched so
  /// the caller can retry or fail the request upward).
  bool try_push(T& v) {
    {
      std::lock_guard<std::mutex> lk(m_);
      if (closed_ || q_.size() >= capacity_) return false;
      q_.push_back(std::move(v));
    }
    item_cv_.notify_one();
    return true;
  }

  /// Blocks until an element is available; std::nullopt once closed AND
  /// drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(m_);
    item_cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
    return pop_locked(lk);
  }

  /// pop() with a real-time bound; std::nullopt on timeout as well as on
  /// closed-and-drained (disambiguate with closed()).
  std::optional<T> pop_for(uint64_t timeout_us) {
    std::unique_lock<std::mutex> lk(m_);
    item_cv_.wait_for(lk, std::chrono::microseconds(timeout_us),
                      [&] { return closed_ || !q_.empty(); });
    return pop_locked(lk);
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lk(m_);
    return pop_locked(lk);
  }

  /// Refuses all future pushes and wakes every waiter. Elements already
  /// queued stay poppable (drain semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lk(m_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(m_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lk(m_);
    return q_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> pop_locked(std::unique_lock<std::mutex>& lk) {
    if (q_.empty()) return std::nullopt;
    std::optional<T> v(std::move(q_.front()));
    q_.pop_front();
    lk.unlock();
    space_cv_.notify_one();
    return v;
  }

  const size_t capacity_;
  mutable std::mutex m_;
  std::condition_variable item_cv_;   ///< waited on by consumers
  std::condition_variable space_cv_;  ///< waited on by producers
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace srmac
