#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace srmac {

namespace {
/// Set while a thread is executing a pool chunk: nested parallel_for calls
/// run inline instead of deadlocking on the workers they themselves occupy.
thread_local bool t_in_pool_task = false;
}  // namespace

/// One batch = one parallel_for invocation in flight.
struct Batch {
  std::function<void(int64_t, int64_t)> body;
  std::atomic<int> remaining{0};  ///< chunks not yet finished
};

/// A chunk of a batch's index range, queued on one worker's deque.
struct Chunk {
  Batch* batch = nullptr;
  int64_t lo = 0, hi = 0;
};

struct ThreadPool::State {
  struct Shard {
    std::mutex m;
    std::deque<Chunk> q;
  };
  std::vector<Shard> shards;  ///< one per worker, plus one for the caller
  std::mutex wake_m;
  std::condition_variable wake_cv;
  std::condition_variable done_cv;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> queued{0};  ///< chunks pushed and not yet popped

  explicit State(int nshards) : shards(nshards) {}

  bool pop(int shard_hint, Chunk* out) {
    const int n = static_cast<int>(shards.size());
    // Own deque from the front; siblings from the back (classic stealing
    // order: thieves take the largest-index chunks the owner queued last).
    for (int attempt = 0; attempt < n; ++attempt) {
      Shard& s = shards[(shard_hint + attempt) % n];
      std::lock_guard<std::mutex> lk(s.m);
      if (s.q.empty()) continue;
      if (attempt == 0) {
        *out = s.q.front();
        s.q.pop_front();
      } else {
        *out = s.q.back();
        s.q.pop_back();
      }
      queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void run_chunk(const Chunk& c) {
    t_in_pool_task = true;
    c.batch->body(c.lo, c.hi);
    t_in_pool_task = false;
    if (c.batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(wake_m);
      done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int workers) {
  workers = std::max(0, workers);
  state_ = std::make_unique<State>(workers + 1);  // shard [workers] = caller's
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(state_->wake_m);
    state_->stop.store(true);
    state_->wake_cv.notify_all();
  }
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      static_cast<int>(std::thread::hardware_concurrency()) - 1);
  return pool;
}

void ThreadPool::worker_loop(int id) {
  State& st = *state_;
  Chunk c;
  while (true) {
    if (st.pop(id, &c)) {
      st.run_chunk(c);
      continue;
    }
    std::unique_lock<std::mutex> lk(st.wake_m);
    st.wake_cv.wait(lk, [&] {
      return st.stop.load() || st.queued.load(std::memory_order_relaxed) > 0;
    });
    if (st.stop.load()) return;
  }
}

void ThreadPool::parallel_for(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body, int max_threads,
    int64_t grain) {
  const int64_t span = end - begin;
  if (span <= 0) return;
  grain = std::max<int64_t>(1, grain);

  int nthreads = parallelism();
  if (max_threads > 0) nthreads = std::min(nthreads, max_threads);
  nthreads = static_cast<int>(
      std::min<int64_t>(nthreads, (span + grain - 1) / grain));

  if (nthreads <= 1 || t_in_pool_task) {
    body(begin, end);
    return;
  }

  // A few chunks per thread so stealing can rebalance uneven chunk costs.
  State& st = *state_;
  const int64_t nchunks =
      std::min<int64_t>(static_cast<int64_t>(nthreads) * 4,
                        (span + grain - 1) / grain);
  const int64_t chunk = (span + nchunks - 1) / nchunks;

  Batch batch;
  batch.body = body;
  batch.remaining.store(static_cast<int>((span + chunk - 1) / chunk));

  {
    const int nshards = static_cast<int>(st.shards.size());
    int shard = 0;
    for (int64_t lo = begin; lo < end; lo += chunk, ++shard) {
      const int64_t hi = std::min(end, lo + chunk);
      State::Shard& s = st.shards[shard % nshards];
      std::lock_guard<std::mutex> lk(s.m);
      s.q.push_back(Chunk{&batch, lo, hi});
      st.queued.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lk(st.wake_m);
    st.wake_cv.notify_all();
    // Also wake callers parked in another batch's completion wait: their
    // predicate admits new work (queued > 0) so they can help drain it.
    st.done_cv.notify_all();
  }

  // The caller participates: drain chunks (own shard = the extra one), then
  // wait for the stragglers other threads are still running.
  const int home = static_cast<int>(st.shards.size()) - 1;
  Chunk c;
  while (batch.remaining.load(std::memory_order_acquire) > 0) {
    if (st.pop(home, &c)) {
      st.run_chunk(c);
    } else {
      std::unique_lock<std::mutex> lk(st.wake_m);
      st.done_cv.wait(lk, [&] {
        return batch.remaining.load(std::memory_order_acquire) == 0 ||
               st.queued.load(std::memory_order_relaxed) > 0;
      });
    }
  }
}

}  // namespace srmac
