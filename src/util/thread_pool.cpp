#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>

namespace srmac {

namespace {
/// Set while a thread is executing a pool chunk: nested parallel_for calls
/// run inline instead of deadlocking on the workers they themselves occupy.
thread_local bool t_in_pool_task = false;
}  // namespace

/// One batch = one parallel_for invocation in flight.
struct Batch {
  std::function<void(int64_t, int64_t)> body;
  std::atomic<int> remaining{0};  ///< chunks not yet finished
};

/// A chunk of a batch's index range, queued on one worker's deque.
struct Chunk {
  Batch* batch = nullptr;
  int64_t lo = 0, hi = 0;
};

struct ThreadPool::State {
  struct Shard {
    std::mutex m;
    std::deque<Chunk> q;
  };
  std::vector<Shard> shards;  ///< one per worker, plus one for the caller
  std::mutex wake_m;
  std::condition_variable wake_cv;
  std::condition_variable done_cv;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> queued{0};  ///< chunks pushed and not yet popped

  explicit State(int nshards) : shards(nshards) {}

  bool pop(int shard_hint, Chunk* out) {
    const int n = static_cast<int>(shards.size());
    // Own deque from the front; siblings from the back (classic stealing
    // order: thieves take the largest-index chunks the owner queued last).
    for (int attempt = 0; attempt < n; ++attempt) {
      Shard& s = shards[(shard_hint + attempt) % n];
      std::lock_guard<std::mutex> lk(s.m);
      if (s.q.empty()) continue;
      if (attempt == 0) {
        *out = s.q.front();
        s.q.pop_front();
      } else {
        *out = s.q.back();
        s.q.pop_back();
      }
      queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void run_chunk(const Chunk& c) {
    t_in_pool_task = true;
    c.batch->body(c.lo, c.hi);
    t_in_pool_task = false;
    if (c.batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(wake_m);
      done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int workers) {
  workers = std::max(0, workers);
  state_ = std::make_unique<State>(workers + 1);  // shard [workers] = caller's
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(state_->wake_m);
    state_->stop.store(true);
    state_->wake_cv.notify_all();
  }
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      static_cast<int>(std::thread::hardware_concurrency()) - 1);
  return pool;
}

void ThreadPool::worker_loop(int id) {
  State& st = *state_;
  Chunk c;
  while (true) {
    if (st.pop(id, &c)) {
      st.run_chunk(c);
      continue;
    }
    std::unique_lock<std::mutex> lk(st.wake_m);
    st.wake_cv.wait(lk, [&] {
      return st.stop.load() || st.queued.load(std::memory_order_relaxed) > 0;
    });
    if (st.stop.load()) return;
  }
}

int parse_cpulist_count(const std::string& list) {
  int count = 0;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t end = list.find(',', pos);
    if (end == std::string::npos) end = list.size();
    const std::string entry = list.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    char* rest = nullptr;
    const long lo = std::strtol(entry.c_str(), &rest, 10);
    if (rest == entry.c_str() || lo < 0) continue;  // not a number
    if (*rest == '-') {
      char* rest2 = nullptr;
      const long hi = std::strtol(rest + 1, &rest2, 10);
      if (rest2 == rest + 1 || hi < lo) continue;  // malformed range
      count += static_cast<int>(hi - lo + 1);
    } else {
      count += 1;
    }
  }
  return count;
}

namespace {

ShardTopology detect_topology() try {
  ShardTopology topo;
  std::error_code ec;
  const std::filesystem::path root("/sys/devices/system/node");
  if (!std::filesystem::is_directory(root, ec) || ec) return topo;
  // increment(ec), not a range-for: the range-for's operator++ throws, and
  // a sandboxed /sys that fails mid-readdir must degrade to the 1-shard
  // fallback, not terminate the process.
  std::filesystem::directory_iterator it(root, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("node", 0) != 0 || name.size() <= 4) continue;
    if (name.find_first_not_of("0123456789", 4) != std::string::npos) continue;
    std::ifstream cpulist(it->path() / "cpulist");
    std::string list;
    if (cpulist) std::getline(cpulist, list);
    const int cpus = parse_cpulist_count(list);
    // Memory-only nodes (CXL expanders, pmem) have an empty cpulist; a
    // shard with no CPUs would only collect phantom queues drained by
    // cross-node steals, so they don't count.
    if (cpus > 0) topo.cpus_per_shard.push_back(cpus);
  }
  if (ec || topo.cpus_per_shard.empty()) return ShardTopology{};
  topo.shards = static_cast<int>(topo.cpus_per_shard.size());
  topo.from_sysfs = true;
  return topo;
} catch (...) {
  return ShardTopology{};  // any filesystem surprise means "no topology"
}

/// The --shards override; 0 = auto (env, then topology).
std::atomic<int> g_shard_override{0};

}  // namespace

const ShardTopology& ThreadPool::topology() {
  static const ShardTopology topo = detect_topology();
  return topo;
}

void ThreadPool::set_default_shards(int shards) {
  g_shard_override.store(std::max(0, shards), std::memory_order_relaxed);
}

int ThreadPool::default_shards() {
  const int forced = g_shard_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const int env_shards = [] {
    const char* v = std::getenv("SRMAC_SHARDS");
    return v ? std::atoi(v) : 0;
  }();
  if (env_shards > 0) return env_shards;
  return topology().shards;
}

void ThreadPool::parallel_for_sharded(
    int64_t count, int nshards, const std::function<void(int64_t)>& item,
    const std::function<int(int64_t)>& shard_of, ShardStats* stats,
    int max_threads) {
  if (stats) *stats = ShardStats{};
  if (count <= 0) return;
  if (nshards <= 0) nshards = default_shards();
  const int S = static_cast<int>(
      std::min<int64_t>(std::max(1, nshards), count));

  // One FIFO queue per shard; whole items are routed by shard_of. The
  // queues exist per dispatch, so the shard count is a per-call parameter
  // (--shards sweeps need no pool reconstruction).
  struct ShardQueue {
    std::mutex m;
    std::deque<int64_t> q;
  };
  std::vector<ShardQueue> queues(S);
  for (int64_t i = 0; i < count; ++i) {
    const int s = ((shard_of(i) % S) + S) % S;
    queues[s].q.push_back(i);
  }

  int participants = parallelism();
  if (max_threads > 0) participants = std::min(participants, max_threads);
  participants = static_cast<int>(std::min<int64_t>(participants, count));
  participants = std::max(participants, 1);
  const int P = participants;

  std::atomic<uint64_t> migrated{0};
  // Each participant homes on shard p*S/P (contiguous, balanced): with
  // P >= S every shard has a resident drainer, with P < S the homeless
  // shards are drained through the steal scan below.
  auto drain = [&](int p) {
    const int home = static_cast<int>(static_cast<int64_t>(p) * S / P);
    while (true) {
      int64_t idx = -1;
      int from = -1;
      for (int attempt = 0; attempt < S; ++attempt) {
        ShardQueue& sq = queues[(home + attempt) % S];
        std::lock_guard<std::mutex> lk(sq.m);
        if (sq.q.empty()) continue;
        if (attempt == 0) {
          idx = sq.q.front();  // own shard drains in routed order
          sq.q.pop_front();
        } else {
          idx = sq.q.back();  // thieves take from the tail
          sq.q.pop_back();
        }
        from = (home + attempt) % S;
        break;
      }
      if (idx < 0) return;
      if (from != home) migrated.fetch_add(1, std::memory_order_relaxed);
      item(idx);
    }
  };

  // The participants themselves schedule on the plain pool, one chunk per
  // participant (grain 1); nested calls inside a pool task collapse to one
  // inline participant, which drains every shard sequentially.
  parallel_for(
      0, P,
      [&](int64_t lo, int64_t hi) {
        for (int64_t p = lo; p < hi; ++p) drain(static_cast<int>(p));
      },
      P, /*grain=*/1);
  if (stats) stats->migrations = migrated.load(std::memory_order_relaxed);
}

void ThreadPool::parallel_for(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body, int max_threads,
    int64_t grain) {
  const int64_t span = end - begin;
  if (span <= 0) return;
  grain = std::max<int64_t>(1, grain);

  int nthreads = parallelism();
  if (max_threads > 0) nthreads = std::min(nthreads, max_threads);
  nthreads = static_cast<int>(
      std::min<int64_t>(nthreads, (span + grain - 1) / grain));

  if (nthreads <= 1 || t_in_pool_task) {
    body(begin, end);
    return;
  }

  // A few chunks per thread so stealing can rebalance uneven chunk costs.
  State& st = *state_;
  const int64_t nchunks =
      std::min<int64_t>(static_cast<int64_t>(nthreads) * 4,
                        (span + grain - 1) / grain);
  const int64_t chunk = (span + nchunks - 1) / nchunks;

  Batch batch;
  batch.body = body;
  batch.remaining.store(static_cast<int>((span + chunk - 1) / chunk));

  {
    const int nshards = static_cast<int>(st.shards.size());
    int shard = 0;
    for (int64_t lo = begin; lo < end; lo += chunk, ++shard) {
      const int64_t hi = std::min(end, lo + chunk);
      State::Shard& s = st.shards[shard % nshards];
      std::lock_guard<std::mutex> lk(s.m);
      s.q.push_back(Chunk{&batch, lo, hi});
      st.queued.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lk(st.wake_m);
    st.wake_cv.notify_all();
    // Also wake callers parked in another batch's completion wait: their
    // predicate admits new work (queued > 0) so they can help drain it.
    st.done_cv.notify_all();
  }

  // The caller participates: drain chunks (own shard = the extra one), then
  // wait for the stragglers other threads are still running.
  const int home = static_cast<int>(st.shards.size()) - 1;
  Chunk c;
  while (batch.remaining.load(std::memory_order_acquire) > 0) {
    if (st.pop(home, &c)) {
      st.run_chunk(c);
    } else {
      std::unique_lock<std::mutex> lk(st.wake_m);
      st.done_cv.wait(lk, [&] {
        return batch.remaining.load(std::memory_order_acquire) == 0 ||
               st.queued.load(std::memory_order_relaxed) > 0;
      });
    }
  }
}

}  // namespace srmac
