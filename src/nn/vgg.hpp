#pragma once

#include <memory>

#include "nn/layers.hpp"

namespace srmac {

/// VGG16 with batch normalization for 32x32 inputs (the CIFAR-10 variant
/// the paper trains in Table IV): thirteen 3x3 conv layers in five blocks
/// (64,64 / 128,128 / 256x3 / 512x3 / 512x3) with 2x2 max-pooling, then a
/// single FC classifier head (the common CIFAR adaptation).
/// `width_mult` scales channels for budget-reduced runs.
std::unique_ptr<Sequential> make_vgg16(int classes = 10,
                                       float width_mult = 1.0f);

/// A shallow VGG-style net (conv-BN-ReLU x4 + pools) used by the quick
/// examples and smoke tests.
std::unique_ptr<Sequential> make_vgg_mini(int classes = 10, int base = 8);

}  // namespace srmac
