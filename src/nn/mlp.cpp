#include "nn/mlp.hpp"

namespace srmac {

std::unique_ptr<Sequential> make_mlp(int in_features,
                                     const std::vector<int>& hidden,
                                     int classes) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Flatten>());
  int in = in_features;
  for (const int width : hidden) {
    net->add(std::make_unique<Linear>(in, width));
    net->add(std::make_unique<ReLU>());
    in = width;
  }
  net->add(std::make_unique<Linear>(in, classes));
  return net;
}

}  // namespace srmac
