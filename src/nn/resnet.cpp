#include "nn/resnet.hpp"

#include <algorithm>

namespace srmac {

namespace {
int scaled(int ch, float mult) { return std::max(4, static_cast<int>(ch * mult)); }
}  // namespace

// ----------------------------- BasicBlock ----------------------------------

BasicBlock::BasicBlock(int in_ch, int out_ch, int stride)
    : conv1_(in_ch, out_ch, 3, stride),
      conv2_(out_ch, out_ch, 3, 1),
      bn1_(out_ch),
      bn2_(out_ch),
      project_(stride != 1 || in_ch != out_ch) {
  if (project_) {
    proj_ = std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_ch);
  }
}

Tensor BasicBlock::forward(const ComputeContext& ctx, const Tensor& x,
                           bool training) {
  if (training) x_cache_ = x;
  Tensor h = conv1_.forward(ctx.fork(1), x, training);
  h = bn1_.forward(ctx, h, training);
  h = relu1_.forward(ctx, h, training);
  h = conv2_.forward(ctx.fork(2), h, training);
  h = bn2_.forward(ctx, h, training);
  Tensor sc = x;
  if (project_) {
    sc = proj_->forward(ctx.fork(3), x, training);
    sc = proj_bn_->forward(ctx, sc, training);
  }
  add_inplace(h, sc);
  return relu2_.forward(ctx, h, training);
}

void BasicBlock::forward_batch(const ComputeContext& ctx,
                               std::vector<Tensor>& xs) {
  // Mirrors forward()'s child order and fork salts exactly; only the
  // batch-at-a-time walk differs, which is invisible to the bits.
  std::vector<Tensor> sc = xs;  // shortcut branch keeps the input
  conv1_.forward_batch(ctx.fork(1), xs);
  bn1_.forward_batch(ctx, xs);
  relu1_.forward_batch(ctx, xs);
  conv2_.forward_batch(ctx.fork(2), xs);
  bn2_.forward_batch(ctx, xs);
  if (project_) {
    proj_->forward_batch(ctx.fork(3), sc);
    proj_bn_->forward_batch(ctx, sc);
  }
  for (size_t s = 0; s < xs.size(); ++s) add_inplace(xs[s], sc[s]);
  relu2_.forward_batch(ctx, xs);
}

Tensor BasicBlock::backward(const ComputeContext& ctx, const Tensor& gout) {
  Tensor g = relu2_.backward(ctx, gout);
  // g splits into the residual branch and the shortcut.
  Tensor gb = bn2_.backward(ctx, g);
  gb = conv2_.backward(ctx.fork(2), gb);
  gb = relu1_.backward(ctx, gb);
  gb = bn1_.backward(ctx, gb);
  gb = conv1_.backward(ctx.fork(1), gb);
  Tensor gs = g;
  if (project_) {
    gs = proj_bn_->backward(ctx, gs);
    gs = proj_->backward(ctx.fork(3), gs);
  }
  add_inplace(gb, gs);
  return gb;
}

void BasicBlock::collect_params(std::vector<Param*>& out) {
  conv1_.collect_params(out);
  bn1_.collect_params(out);
  conv2_.collect_params(out);
  bn2_.collect_params(out);
  if (project_) {
    proj_->collect_params(out);
    proj_bn_->collect_params(out);
  }
}

// --------------------------- BottleneckBlock -------------------------------

BottleneckBlock::BottleneckBlock(int in_ch, int mid_ch, int out_ch, int stride)
    : conv1_(in_ch, mid_ch, 1, 1, 0),
      conv2_(mid_ch, mid_ch, 3, stride),
      conv3_(mid_ch, out_ch, 1, 1, 0),
      bn1_(mid_ch),
      bn2_(mid_ch),
      bn3_(out_ch),
      project_(stride != 1 || in_ch != out_ch) {
  if (project_) {
    proj_ = std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_ch);
  }
}

Tensor BottleneckBlock::forward(const ComputeContext& ctx, const Tensor& x,
                                bool training) {
  Tensor h = conv1_.forward(ctx.fork(1), x, training);
  h = bn1_.forward(ctx, h, training);
  h = relu1_.forward(ctx, h, training);
  h = conv2_.forward(ctx.fork(2), h, training);
  h = bn2_.forward(ctx, h, training);
  h = relu2_.forward(ctx, h, training);
  h = conv3_.forward(ctx.fork(3), h, training);
  h = bn3_.forward(ctx, h, training);
  Tensor sc = x;
  if (project_) {
    sc = proj_->forward(ctx.fork(4), x, training);
    sc = proj_bn_->forward(ctx, sc, training);
  }
  add_inplace(h, sc);
  return relu3_.forward(ctx, h, training);
}

void BottleneckBlock::forward_batch(const ComputeContext& ctx,
                                    std::vector<Tensor>& xs) {
  std::vector<Tensor> sc = xs;
  conv1_.forward_batch(ctx.fork(1), xs);
  bn1_.forward_batch(ctx, xs);
  relu1_.forward_batch(ctx, xs);
  conv2_.forward_batch(ctx.fork(2), xs);
  bn2_.forward_batch(ctx, xs);
  relu2_.forward_batch(ctx, xs);
  conv3_.forward_batch(ctx.fork(3), xs);
  bn3_.forward_batch(ctx, xs);
  if (project_) {
    proj_->forward_batch(ctx.fork(4), sc);
    proj_bn_->forward_batch(ctx, sc);
  }
  for (size_t s = 0; s < xs.size(); ++s) add_inplace(xs[s], sc[s]);
  relu3_.forward_batch(ctx, xs);
}

Tensor BottleneckBlock::backward(const ComputeContext& ctx,
                                 const Tensor& gout) {
  Tensor g = relu3_.backward(ctx, gout);
  Tensor gb = bn3_.backward(ctx, g);
  gb = conv3_.backward(ctx.fork(3), gb);
  gb = relu2_.backward(ctx, gb);
  gb = bn2_.backward(ctx, gb);
  gb = conv2_.backward(ctx.fork(2), gb);
  gb = relu1_.backward(ctx, gb);
  gb = bn1_.backward(ctx, gb);
  gb = conv1_.backward(ctx.fork(1), gb);
  Tensor gs = g;
  if (project_) {
    gs = proj_bn_->backward(ctx, gs);
    gs = proj_->backward(ctx.fork(4), gs);
  }
  add_inplace(gb, gs);
  return gb;
}

void BottleneckBlock::collect_params(std::vector<Param*>& out) {
  conv1_.collect_params(out);
  bn1_.collect_params(out);
  conv2_.collect_params(out);
  bn2_.collect_params(out);
  conv3_.collect_params(out);
  bn3_.collect_params(out);
  if (project_) {
    proj_->collect_params(out);
    proj_bn_->collect_params(out);
  }
}

// ------------------------------ factories ----------------------------------

std::unique_ptr<Sequential> make_resnet20(int classes, float width_mult) {
  auto net = std::make_unique<Sequential>();
  const int c1 = scaled(16, width_mult), c2 = scaled(32, width_mult),
            c3 = scaled(64, width_mult);
  net->add(std::make_unique<Conv2d>(3, c1, 3, 1));
  net->add(std::make_unique<BatchNorm2d>(c1));
  net->add(std::make_unique<ReLU>());
  for (int i = 0; i < 3; ++i)
    net->add(std::make_unique<BasicBlock>(c1, c1, 1));
  net->add(std::make_unique<BasicBlock>(c1, c2, 2));
  for (int i = 0; i < 2; ++i)
    net->add(std::make_unique<BasicBlock>(c2, c2, 1));
  net->add(std::make_unique<BasicBlock>(c2, c3, 2));
  for (int i = 0; i < 2; ++i)
    net->add(std::make_unique<BasicBlock>(c3, c3, 1));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(c3, classes));
  return net;
}

std::unique_ptr<Sequential> make_resnet50_small(int classes, float width_mult) {
  auto net = std::make_unique<Sequential>();
  const int c0 = scaled(16, width_mult);
  const int mids[3] = {scaled(16, width_mult), scaled(32, width_mult),
                       scaled(64, width_mult)};
  const int blocks[3] = {3, 4, 3};  // (3,4,6,3)-lite for 32x32 inputs
  net->add(std::make_unique<Conv2d>(3, c0, 3, 1));
  net->add(std::make_unique<BatchNorm2d>(c0));
  net->add(std::make_unique<ReLU>());
  int in_ch = c0;
  for (int s = 0; s < 3; ++s) {
    const int mid = mids[s], out = mid * 4;
    for (int b = 0; b < blocks[s]; ++b) {
      const int stride = (b == 0 && s > 0) ? 2 : 1;
      net->add(std::make_unique<BottleneckBlock>(in_ch, mid, out, stride));
      in_ch = out;
    }
  }
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(in_ch, classes));
  return net;
}

}  // namespace srmac
