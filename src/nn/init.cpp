#include "nn/init.hpp"

#include <cmath>

namespace srmac {

void he_init(Layer& model, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Param*> params;
  model.collect_params(params);
  for (Param* p : params) {
    if (p->value.ndim() != 2) continue;  // weights only (BN/bias are 1-D)
    const int fan_in = p->value.dim(1);
    const double std = std::sqrt(2.0 / fan_in);
    for (int64_t i = 0; i < p->value.numel(); ++i)
      p->value[i] = static_cast<float>(rng.normal() * std);
    p->bump();  // invalidate cached quantized weight planes
  }
}

int64_t param_count(Layer& model) {
  std::vector<Param*> params;
  model.collect_params(params);
  int64_t n = 0;
  for (Param* p : params) n += p->value.numel();
  return n;
}

}  // namespace srmac
