#include "nn/layers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "fpemu/softfloat.hpp"
#include "mac/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/thread_pool.hpp"

namespace srmac {

namespace {

/// Grouped merging requires every sample of the micro-batch to share one
/// problem shape (the serve path guarantees it; mixed shapes fall through
/// to the coalescing path).
bool all_same_shape(const std::vector<Tensor>& xs) {
  for (size_t i = 1; i < xs.size(); ++i) {
    if (xs[i].ndim() != xs[0].ndim()) return false;
    for (int d = 0; d < xs[0].ndim(); ++d)
      if (xs[i].dim(d) != xs[0].dim(d)) return false;
  }
  return true;
}

}  // namespace

// -------------------------- WeightQuantCache -------------------------------

const std::vector<uint32_t>& WeightQuantCache::get(const Param& p,
                                                   const FpFormat& fmt,
                                                   bool transposed) {
  assert(p.value.ndim() == 2);
  const int rows = p.value.dim(0), cols = p.value.dim(1);
  Plane* plane = nullptr;
  for (Plane& pl : planes_) {
    if (pl.fmt == fmt && pl.transposed == transposed) {
      plane = &pl;
      break;
    }
  }
  if (!plane) {
    planes_.push_back(Plane{fmt, transposed, 0, nullptr, {}});
    plane = &planes_.back();  // deque: stable across later push_backs
  } else if (plane->version == p.version && plane->data == p.value.data()) {
    return plane->bits;
  }
  plane->version = p.version;
  plane->data = p.value.data();
  plane->bits.resize(static_cast<size_t>(rows) * cols);
  // Quantization is elementwise, so transposing the quantized plane equals
  // quantizing the transpose — the backward GEMMs reuse the same cache.
  // This recurs once per optimizer step per format; split it across the
  // pool like every other quantization pass.
  if (transposed) {
    uint32_t* bits = plane->bits.data();
    ThreadPool::global().parallel_for(
        0, rows,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i)
            for (int j = 0; j < cols; ++j)
              bits[static_cast<size_t>(j) * rows + i] =
                  SoftFloat::from_double(fmt, p.value.at(static_cast<int>(i), j));
        },
        /*max_threads=*/0, /*grain=*/16);
  } else {
    gemm_quantize(fmt, rows, cols, p.value.data(), cols, plane->bits.data());
  }
  return plane->bits;
}

// ------------------------------- Conv2d ------------------------------------

Conv2d::Conv2d(int in_ch, int out_ch, int k, int stride, int pad)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      k_(k),
      stride_(stride),
      pad_(pad < 0 ? k / 2 : pad) {
  w_.name = "conv_w";
  w_.value = Tensor({out_ch, in_ch * k * k});
  w_.grad = Tensor({out_ch, in_ch * k * k});
  w_.momentum = Tensor({out_ch, in_ch * k * k});
}

void Conv2d::build_cols(const ComputeContext& ctx, const Tensor& x, int oh,
                        int ow) {
  const int N = x.dim(0), H = x.dim(2), W = x.dim(3);
  const int K = in_ch_ * k_ * k_;
  const int64_t L = static_cast<int64_t>(oh) * ow;
  cols_.resize(static_cast<size_t>(K) * N * L);  // grows once, then reused
  // im2col writes each sample's rows directly into the batched panel
  // (row pitch N*L), so there is no per-sample staging copy; samples are
  // independent, so the batch splits across the pool.
  ThreadPool::global().parallel_for(
      0, N,
      [&](int64_t lo, int64_t hi) {
        for (int64_t n = lo; n < hi; ++n)
          im2col(x.data() + static_cast<size_t>(n) * in_ch_ * H * W, in_ch_,
                 H, W, k_, k_, stride_, pad_, cols_.data() + n * L,
                 /*row_stride=*/static_cast<int64_t>(N) * L);
      },
      ctx.threads);
}

Tensor Conv2d::forward(const ComputeContext& ctx, const Tensor& x,
                       bool training) {
  assert(x.ndim() == 4 && x.dim(1) == in_ch_);
  const int N = x.dim(0), H = x.dim(2), W = x.dim(3);
  const int oh = conv_out_dim(H, k_, stride_, pad_);
  const int ow = conv_out_dim(W, k_, stride_, pad_);
  const int K = in_ch_ * k_ * k_;
  const int L = oh * ow;

  if (training) x_cache_ = x;

  // One batched GEMM: cols_ is K x (N*L); out = W * cols_.
  build_cols(ctx, x, oh, ow);
  Tensor out_flat({out_ch_, N * L});
  if (ctx.bit_accurate()) {
    const auto& wq = wq_.get(w_, ctx.quant_fmt(), /*transposed=*/false);
    matmul_qa(ctx, out_ch_, N * L, K, wq.data(), cols_.data(),
              out_flat.data());
  } else {
    matmul(ctx, out_ch_, N * L, K, w_.value.data(), cols_.data(),
           out_flat.data());
  }

  // Reorder (out_ch, N, L) -> (N, out_ch, oh, ow).
  Tensor out({N, out_ch_, oh, ow});
  for (int c = 0; c < out_ch_; ++c)
    for (int n = 0; n < N; ++n)
      std::copy_n(out_flat.data() + (static_cast<size_t>(c) * N + n) * L, L,
                  out.data() + (static_cast<size_t>(n) * out_ch_ + c) * L);
  return out;
}

void Conv2d::forward_batch(const ComputeContext& ctx,
                           std::vector<Tensor>& xs) {
  // Grouped same-shape execution (docs/SERVING.md): merge the whole
  // micro-batch into ONE wide GEMM — the samples' im2col panels
  // concatenate along the column axis, and seed_col_period = L makes
  // column s*L+t seed exactly as the standalone forward()'s column t, so
  // every sample keeps its own bits while the kernel sees one big problem
  // instead of xs.size() small ones.
  if (ctx.grouped && xs.size() > 1 && ctx.backend &&
      ctx.backend->supports_grouped() && all_same_shape(xs)) {
    const int n = static_cast<int>(xs.size());
    const Tensor& x0 = xs[0];
    assert(x0.ndim() == 4 && x0.dim(0) == 1 && x0.dim(1) == in_ch_);
    const int H = x0.dim(2), W = x0.dim(3);
    const int oh = conv_out_dim(H, k_, stride_, pad_);
    const int ow = conv_out_dim(W, k_, stride_, pad_);
    const int K = in_ch_ * k_ * k_;
    const int L = oh * ow;
    // Wide panel K x (n*L), sample s in columns [s*L, (s+1)*L) — the same
    // layout build_cols produces for a stacked batch.
    cols_.resize(static_cast<size_t>(K) * n * L);
    ThreadPool::global().parallel_for(
        0, n,
        [&](int64_t lo, int64_t hi) {
          for (int64_t s = lo; s < hi; ++s)
            im2col(xs[s].data(), in_ch_, H, W, k_, k_, stride_, pad_,
                   cols_.data() + s * static_cast<int64_t>(L),
                   /*row_stride=*/static_cast<int64_t>(n) * L);
        },
        ctx.threads);
    Tensor wide({out_ch_, n * L});
    if (ctx.bit_accurate()) {
      const auto& wq = wq_.get(w_, ctx.quant_fmt(), /*transposed=*/false);
      matmul_qa(ctx, out_ch_, n * L, K, wq.data(), cols_.data(), wide.data(),
                /*accumulate=*/false, /*seed_row_period=*/0,
                /*seed_col_period=*/L);
    } else {
      matmul(ctx, out_ch_, n * L, K, w_.value.data(), cols_.data(),
             wide.data(), /*accumulate=*/false, /*seed_row_period=*/0,
             /*seed_col_period=*/L);
    }
    if (ctx.telemetry) ctx.telemetry->record_grouped_gemm(n);
    // Scatter (c, s*L + t) -> sample s's (1, out_ch, oh, ow).
    for (int s = 0; s < n; ++s) {
      Tensor out({1, out_ch_, oh, ow});
      for (int c = 0; c < out_ch_; ++c)
        std::copy_n(wide.data() + (static_cast<size_t>(c) * n + s) * L, L,
                    out.data() + static_cast<size_t>(c) * L);
      xs[s] = std::move(out);
    }
    return;
  }
  // Coalescing pays only where gemm_batch beats the sequential loop; the
  // fallback keeps every backend (and the 1-sample case) on the exact
  // forward() path.
  if (xs.size() <= 1 || !ctx.backend || !ctx.backend->supports_batch()) {
    Layer::forward_batch(ctx, xs);
    return;
  }
  const bool bits = ctx.bit_accurate();
  // One cache fetch for the whole batch: every item shares the plane.
  const std::vector<uint32_t>* wq =
      bits ? &wq_.get(w_, ctx.quant_fmt(), /*transposed=*/false) : nullptr;
  MatmulBatch batch(ctx);
  std::vector<Tensor> flats(xs.size());
  std::vector<std::pair<int, int>> dims(xs.size());  // (oh, ow) per sample
  const int K = in_ch_ * k_ * k_;
  // Stage the per-sample panels in batch-owned scratch (alive until
  // flush — the member cols_ buffer can't be shared by deferred
  // problems), then unfold all samples across the pool like build_cols
  // does for a stacked batch.
  std::vector<float*> cols(xs.size());
  for (size_t s = 0; s < xs.size(); ++s) {
    const Tensor& x = xs[s];
    assert(x.ndim() == 4 && x.dim(0) == 1 && x.dim(1) == in_ch_);
    const int oh = conv_out_dim(x.dim(2), k_, stride_, pad_);
    const int ow = conv_out_dim(x.dim(3), k_, stride_, pad_);
    dims[s] = {oh, ow};
    cols[s] = batch.scratch(static_cast<size_t>(K) * oh * ow);
  }
  ThreadPool::global().parallel_for(
      0, static_cast<int64_t>(xs.size()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t s = lo; s < hi; ++s) {
          const Tensor& x = xs[s];
          const int64_t L = static_cast<int64_t>(dims[s].first) *
                            dims[s].second;
          im2col(x.data(), in_ch_, x.dim(2), x.dim(3), k_, k_, stride_,
                 pad_, cols[s], /*row_stride=*/L);
        }
      },
      ctx.threads);
  for (size_t s = 0; s < xs.size(); ++s) {
    const int L = dims[s].first * dims[s].second;
    // The sample's own M x L problem under the shared ctx — seed and shape
    // match the single-sample forward() dispatch exactly, so the batched
    // schedule returns the same bits.
    flats[s] = Tensor({out_ch_, L});
    if (bits)
      batch.add_qa(ctx, out_ch_, L, K, wq->data(), cols[s],
                   flats[s].data());
    else
      batch.add(ctx, out_ch_, L, K, w_.value.data(), cols[s],
                flats[s].data());
  }
  batch.flush();
  // At batch dimension 1 the (out_ch, L) GEMM output *is* the NCHW layout.
  for (size_t s = 0; s < xs.size(); ++s)
    xs[s] = flats[s].reshaped({1, out_ch_, dims[s].first, dims[s].second});
}

Tensor Conv2d::backward(const ComputeContext& ctx, const Tensor& gout) {
  const Tensor& x = x_cache_;
  const int N = x.dim(0), H = x.dim(2), W = x.dim(3);
  const int oh = gout.dim(2), ow = gout.dim(3);
  const int K = in_ch_ * k_ * k_;
  const int L = oh * ow;

  // Rebuild cols_ (recompute trades memory for cache footprint).
  build_cols(ctx, x, oh, ow);
  // gout as (out_ch, N*L). When the dW GEMM defers into a cross-layer
  // bucket (ctx.grad_batch), the reshaped gradient must outlive this call,
  // so it stages in the bucket's scratch instead of a local tensor.
  Tensor g_flat_store;
  float* g_flat;
  if (ctx.grad_batch) {
    g_flat = ctx.grad_batch->scratch(static_cast<size_t>(out_ch_) * N * L);
  } else {
    g_flat_store = Tensor({out_ch_, N * L});
    g_flat = g_flat_store.data();
  }
  for (int c = 0; c < out_ch_; ++c)
    for (int n = 0; n < N; ++n)
      std::copy_n(gout.data() + (static_cast<size_t>(n) * out_ch_ + c) * L, L,
                  g_flat + (static_cast<size_t>(c) * N + n) * L);

  // The two backward GEMMs — dW = gout * cols^T (weight gradient) and
  // gcols = W^T * gout (data gradient) — are independent. With a deferred
  // bucket the dW GEMM joins it (cols^T is materialized into the bucket at
  // add time) and the data gradient, which the serial gx chain needs now,
  // dispatches immediately; otherwise both go down as one gemm_batch
  // submission. Bit-identical every way — each item carries its own
  // pass/seed, scheduling is invisible to the bits.
  const ComputeContext ctx_gx = ctx.fork(2);
  Tensor gcols({K, N * L});
  MatmulBatch local(ctx);
  MatmulBatch& dw_sink = ctx.grad_batch ? *ctx.grad_batch : local;
  dw_sink.add_nt(ctx.fork(1).weight_grad(), out_ch_, K, N * L, g_flat,
                 cols_.data(), w_.grad.data(), /*accumulate=*/true);
  if (ctx_gx.bit_accurate()) {
    // The cached transposed weight plane; non-prequantized backends get it
    // decoded back losslessly by the dispatch.
    const auto& wqt = wq_.get(w_, ctx_gx.quant_fmt(), /*transposed=*/true);
    if (ctx.grad_batch)
      matmul_qa(ctx_gx, K, N * L, out_ch_, wqt.data(), g_flat, gcols.data());
    else
      local.add_qa(ctx_gx, K, N * L, out_ch_, wqt.data(), g_flat,
                   gcols.data());
  } else {
    if (ctx.grad_batch)
      matmul_tn(ctx_gx, K, N * L, out_ch_, w_.value.data(), g_flat,
                gcols.data());
    else
      local.add_tn(ctx_gx, K, N * L, out_ch_, w_.value.data(), g_flat,
                   gcols.data());
  }
  local.flush();
  // End of this layer's backward is a safe flush point for the deferred
  // bucket (our staged g_flat is no longer needed; every other pending
  // item's operands are layer members or batch-owned copies), so the
  // memory bound holds even when this conv is nested inside a composite
  // block the bucketing Sequential only sees as one child.
  if (ctx.grad_batch &&
      ctx.grad_batch->staged_floats() >= Sequential::kGradBucketFloats)
    ctx.grad_batch->flush();
  Tensor gx({N, in_ch_, H, W});  // zero-initialized: col2im accumulates
  ThreadPool::global().parallel_for(
      0, N,
      [&](int64_t lo, int64_t hi) {
        for (int64_t n = lo; n < hi; ++n)
          col2im_accumulate(gcols.data() + n * L, in_ch_, H, W, k_, k_,
                            stride_, pad_,
                            gx.data() + static_cast<size_t>(n) * in_ch_ * H * W,
                            /*row_stride=*/static_cast<int64_t>(N) * L);
      },
      ctx.threads);
  return gx;
}

// ------------------------------- Linear ------------------------------------

Linear::Linear(int in_f, int out_f) : in_f_(in_f), out_f_(out_f) {
  w_.name = "linear_w";
  w_.value = Tensor({out_f, in_f});
  w_.grad = Tensor({out_f, in_f});
  w_.momentum = Tensor({out_f, in_f});
  b_.name = "linear_b";
  b_.value = Tensor({out_f});
  b_.grad = Tensor({out_f});
  b_.momentum = Tensor({out_f});
  b_.decay = false;
}

Tensor Linear::forward(const ComputeContext& ctx, const Tensor& x,
                       bool training) {
  assert(x.ndim() == 2 && x.dim(1) == in_f_);
  const int N = x.dim(0);
  if (training) x_cache_ = x;
  Tensor out({N, out_f_});
  if (ctx.bit_accurate()) {
    // B = W^T from the cached transposed weight plane.
    const auto& wqt = wq_.get(w_, ctx.quant_fmt(), /*transposed=*/true);
    matmul_qb(ctx, N, out_f_, in_f_, x.data(), wqt.data(), out.data());
  } else {
    matmul_nt(ctx, N, out_f_, in_f_, x.data(), w_.value.data(), out.data());
  }
  for (int n = 0; n < N; ++n)
    for (int o = 0; o < out_f_; ++o) out.at(n, o) += b_.value[o];
  return out;
}

void Linear::forward_batch(const ComputeContext& ctx,
                           std::vector<Tensor>& xs) {
  // Grouped same-shape execution: stack the samples' rows into one
  // (n x in_f) A operand and run a single GEMM against the shared W^T
  // plane. seed_row_period = 1 makes every row seed as row 0, which is
  // exactly the (1 x out_f) seed of each sample's standalone forward().
  if (ctx.grouped && xs.size() > 1 && ctx.backend &&
      ctx.backend->supports_grouped() && all_same_shape(xs)) {
    const int n = static_cast<int>(xs.size());
    assert(xs[0].ndim() == 2 && xs[0].dim(0) == 1 && xs[0].dim(1) == in_f_);
    Tensor a({n, in_f_});
    for (int s = 0; s < n; ++s)
      std::copy_n(xs[s].data(), in_f_,
                  a.data() + static_cast<size_t>(s) * in_f_);
    Tensor out({n, out_f_});
    if (ctx.bit_accurate()) {
      const auto& wqt = wq_.get(w_, ctx.quant_fmt(), /*transposed=*/true);
      matmul_qb(ctx, n, out_f_, in_f_, a.data(), wqt.data(), out.data(),
                /*accumulate=*/false, /*seed_row_period=*/1,
                /*seed_col_period=*/0);
    } else {
      matmul_nt(ctx, n, out_f_, in_f_, a.data(), w_.value.data(),
                out.data());
    }
    if (ctx.telemetry) ctx.telemetry->record_grouped_gemm(n);
    for (int s = 0; s < n; ++s) {
      Tensor o({1, out_f_});
      for (int of = 0; of < out_f_; ++of)
        o.at(0, of) = out.at(s, of) + b_.value[of];
      xs[s] = std::move(o);
    }
    return;
  }
  if (xs.size() <= 1 || !ctx.backend || !ctx.backend->supports_batch()) {
    Layer::forward_batch(ctx, xs);
    return;
  }
  const bool bits = ctx.bit_accurate();
  const std::vector<uint32_t>* wqt =
      bits ? &wq_.get(w_, ctx.quant_fmt(), /*transposed=*/true) : nullptr;
  MatmulBatch batch(ctx);
  std::vector<Tensor> outs(xs.size());
  for (size_t s = 0; s < xs.size(); ++s) {
    const Tensor& x = xs[s];
    assert(x.ndim() == 2 && x.dim(0) == 1 && x.dim(1) == in_f_);
    outs[s] = Tensor({1, out_f_});
    // Same 1 x out_f problem and seed as the single-sample forward(); the
    // shared W^T plane is packed once for the whole batch by the backend.
    if (bits)
      batch.add_qb(ctx, 1, out_f_, in_f_, x.data(), wqt->data(),
                   outs[s].data());
    else
      batch.add_nt(ctx, 1, out_f_, in_f_, x.data(), w_.value.data(),
                   outs[s].data());
  }
  batch.flush();
  for (size_t s = 0; s < xs.size(); ++s) {
    for (int o = 0; o < out_f_; ++o) outs[s].at(0, o) += b_.value[o];
    xs[s] = std::move(outs[s]);
  }
}

Tensor Linear::backward(const ComputeContext& ctx, const Tensor& gout) {
  const int N = gout.dim(0);
  // dW = gout^T * x ; db = column sums ; gx = gout * W. The two GEMMs are
  // independent: with a deferred bucket (ctx.grad_batch) the dW GEMM joins
  // it — add_tn copies gout^T into the bucket and x_cache_ is a member, so
  // both operands outlive this call — and gx dispatches immediately;
  // otherwise both submit as one gemm_batch. Bit-identical either way.
  for (int n = 0; n < N; ++n)
    for (int o = 0; o < out_f_; ++o) b_.grad[o] += gout.at(n, o);
  Tensor gx({N, in_f_});
  const ComputeContext ctx_gx = ctx.fork(2);
  MatmulBatch local(ctx);
  MatmulBatch& dw_sink = ctx.grad_batch ? *ctx.grad_batch : local;
  dw_sink.add_tn(ctx.fork(1).weight_grad(), out_f_, in_f_, N, gout.data(),
                 x_cache_.data(), w_.grad.data(), /*accumulate=*/true);
  if (ctx_gx.bit_accurate()) {
    // The cached weight plane; non-prequantized backends get it decoded
    // back losslessly by the dispatch.
    const auto& wq = wq_.get(w_, ctx_gx.quant_fmt(), /*transposed=*/false);
    if (ctx.grad_batch)
      matmul_qb(ctx_gx, N, in_f_, out_f_, gout.data(), wq.data(), gx.data());
    else
      local.add_qb(ctx_gx, N, in_f_, out_f_, gout.data(), wq.data(),
                   gx.data());
  } else {
    if (ctx.grad_batch)
      matmul(ctx_gx, N, in_f_, out_f_, gout.data(), w_.value.data(),
             gx.data());
    else
      local.add(ctx_gx, N, in_f_, out_f_, gout.data(), w_.value.data(),
                gx.data());
  }
  local.flush();
  // Safe flush point, as in Conv2d::backward: bounds the bucket's staged
  // memory regardless of how deeply this layer is nested.
  if (ctx.grad_batch &&
      ctx.grad_batch->staged_floats() >= Sequential::kGradBucketFloats)
    ctx.grad_batch->flush();
  return gx;
}

// ----------------------------- BatchNorm2d ---------------------------------

BatchNorm2d::BatchNorm2d(int ch, float momentum, float eps)
    : ch_(ch), momentum_(momentum), eps_(eps) {
  gamma_.name = "bn_gamma";
  gamma_.value = Tensor({ch}, 1.0f);
  gamma_.grad = Tensor({ch});
  gamma_.momentum = Tensor({ch});
  gamma_.decay = false;
  beta_.name = "bn_beta";
  beta_.value = Tensor({ch});
  beta_.grad = Tensor({ch});
  beta_.momentum = Tensor({ch});
  beta_.decay = false;
  running_mean_ = Tensor({ch});
  running_var_ = Tensor({ch}, 1.0f);
}

Tensor BatchNorm2d::forward(const ComputeContext&, const Tensor& x,
                            bool training) {
  assert(x.ndim() == 4 && x.dim(1) == ch_);
  const int N = x.dim(0), H = x.dim(2), W = x.dim(3);
  const int64_t per_ch = static_cast<int64_t>(N) * H * W;
  in_shape_ = x.shape();
  Tensor out(x.shape());
  if (training) {
    xhat_cache_ = Tensor(x.shape());
    invstd_cache_ = Tensor({ch_});
  }
  for (int c = 0; c < ch_; ++c) {
    double mean, var;
    if (training) {
      double sum = 0, sq = 0;
      for (int n = 0; n < N; ++n)
        for (int h = 0; h < H; ++h)
          for (int w = 0; w < W; ++w) {
            const double v = x.at(n, c, h, w);
            sum += v;
            sq += v * v;
          }
      mean = sum / static_cast<double>(per_ch);
      var = sq / static_cast<double>(per_ch) - mean * mean;
      if (var < 0) var = 0;
      running_mean_[c] = (1 - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] =
          (1 - momentum_) * running_var_[c] + momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float invstd = static_cast<float>(1.0 / std::sqrt(var + eps_));
    if (training) invstd_cache_[c] = invstd;
    const float g = gamma_.value[c], b = beta_.value[c];
    for (int n = 0; n < N; ++n)
      for (int h = 0; h < H; ++h)
        for (int w = 0; w < W; ++w) {
          const float xh =
              (x.at(n, c, h, w) - static_cast<float>(mean)) * invstd;
          if (training) xhat_cache_.at(n, c, h, w) = xh;
          out.at(n, c, h, w) = g * xh + b;
        }
  }
  return out;
}

Tensor BatchNorm2d::backward(const ComputeContext&, const Tensor& gout) {
  const int N = in_shape_[0], H = in_shape_[2], W = in_shape_[3];
  const double m = static_cast<double>(N) * H * W;
  Tensor gx({N, ch_, H, W});
  for (int c = 0; c < ch_; ++c) {
    double sum_g = 0, sum_gx = 0;
    for (int n = 0; n < N; ++n)
      for (int h = 0; h < H; ++h)
        for (int w = 0; w < W; ++w) {
          const double g = gout.at(n, c, h, w);
          sum_g += g;
          sum_gx += g * xhat_cache_.at(n, c, h, w);
        }
    gamma_.grad[c] += static_cast<float>(sum_gx);
    beta_.grad[c] += static_cast<float>(sum_g);
    const double gam = gamma_.value[c], invstd = invstd_cache_[c];
    for (int n = 0; n < N; ++n)
      for (int h = 0; h < H; ++h)
        for (int w = 0; w < W; ++w) {
          const double g = gout.at(n, c, h, w);
          const double xh = xhat_cache_.at(n, c, h, w);
          gx.at(n, c, h, w) = static_cast<float>(
              gam * invstd * (g - sum_g / m - xh * sum_gx / m));
        }
  }
  return gx;
}

// -------------------------------- ReLU -------------------------------------

Tensor ReLU::forward(const ComputeContext&, const Tensor& x, bool training) {
  Tensor out = x;
  if (training) mask_ = Tensor(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (x[i] > 0) {
      if (training) mask_[i] = 1.0f;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const ComputeContext&, const Tensor& gout) {
  Tensor gx = gout;
  for (int64_t i = 0; i < gx.numel(); ++i) gx[i] *= mask_[i];
  return gx;
}

// ------------------------------ MaxPool2d ----------------------------------

MaxPool2d::MaxPool2d(int k, int stride) : k_(k), stride_(stride < 0 ? k : stride) {}

Tensor MaxPool2d::forward(const ComputeContext&, const Tensor& x,
                          bool training) {
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const int oh = (H - k_) / stride_ + 1, ow = (W - k_) / stride_ + 1;
  in_shape_ = x.shape();
  Tensor out({N, C, oh, ow});
  if (training) argmax_ = Tensor({N, C, oh, ow});
  for (int n = 0; n < N; ++n)
    for (int c = 0; c < C; ++c)
      for (int y = 0; y < oh; ++y)
        for (int xo = 0; xo < ow; ++xo) {
          float best = -1e30f;
          int besti = 0;
          for (int i = 0; i < k_; ++i)
            for (int j = 0; j < k_; ++j) {
              const int iy = y * stride_ + i, ix = xo * stride_ + j;
              const float v = x.at(n, c, iy, ix);
              if (v > best) {
                best = v;
                besti = iy * W + ix;
              }
            }
          out.at(n, c, y, xo) = best;
          if (training) argmax_.at(n, c, y, xo) = static_cast<float>(besti);
        }
  return out;
}

Tensor MaxPool2d::backward(const ComputeContext&, const Tensor& gout) {
  const int N = in_shape_[0], C = in_shape_[1], H = in_shape_[2],
            W = in_shape_[3];
  Tensor gx({N, C, H, W});
  const int oh = gout.dim(2), ow = gout.dim(3);
  for (int n = 0; n < N; ++n)
    for (int c = 0; c < C; ++c)
      for (int y = 0; y < oh; ++y)
        for (int xo = 0; xo < ow; ++xo) {
          const int idx = static_cast<int>(argmax_.at(n, c, y, xo));
          gx.at(n, c, idx / W, idx % W) += gout.at(n, c, y, xo);
        }
  return gx;
}

// ---------------------------- GlobalAvgPool --------------------------------

Tensor GlobalAvgPool::forward(const ComputeContext&, const Tensor& x, bool) {
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  in_shape_ = x.shape();
  Tensor out({N, C});
  for (int n = 0; n < N; ++n)
    for (int c = 0; c < C; ++c) {
      double s = 0;
      for (int h = 0; h < H; ++h)
        for (int w = 0; w < W; ++w) s += x.at(n, c, h, w);
      out.at(n, c) = static_cast<float>(s / (H * W));
    }
  return out;
}

Tensor GlobalAvgPool::backward(const ComputeContext&, const Tensor& gout) {
  const int N = in_shape_[0], C = in_shape_[1], H = in_shape_[2],
            W = in_shape_[3];
  Tensor gx({N, C, H, W});
  const float inv = 1.0f / static_cast<float>(H * W);
  for (int n = 0; n < N; ++n)
    for (int c = 0; c < C; ++c) {
      const float g = gout.at(n, c) * inv;
      for (int h = 0; h < H; ++h)
        for (int w = 0; w < W; ++w) gx.at(n, c, h, w) = g;
    }
  return gx;
}

// ------------------------------- Flatten -----------------------------------

Tensor Flatten::forward(const ComputeContext&, const Tensor& x, bool) {
  in_shape_ = x.shape();
  const int N = x.dim(0);
  return x.reshaped({N, static_cast<int>(x.numel() / N)});
}

Tensor Flatten::backward(const ComputeContext&, const Tensor& gout) {
  return gout.reshaped(in_shape_);
}

// ------------------------- SoftmaxCrossEntropy -----------------------------

float SoftmaxCrossEntropy::forward_loss(const Tensor& logits,
                                        const std::vector<int>& labels) {
  const int N = logits.dim(0), C = logits.dim(1);
  probs_ = Tensor({N, C});
  labels_ = labels;
  double loss = 0;
  for (int n = 0; n < N; ++n) {
    float mx = -1e30f;
    for (int c = 0; c < C; ++c) mx = std::max(mx, logits.at(n, c));
    double z = 0;
    for (int c = 0; c < C; ++c) {
      const double e = std::exp(static_cast<double>(logits.at(n, c) - mx));
      probs_.at(n, c) = static_cast<float>(e);
      z += e;
    }
    for (int c = 0; c < C; ++c)
      probs_.at(n, c) = static_cast<float>(probs_.at(n, c) / z);
    loss -= std::log(std::max(1e-12, static_cast<double>(probs_.at(n, labels[n]))));
  }
  return static_cast<float>(loss / N);
}

Tensor SoftmaxCrossEntropy::backward_loss(float loss_scale) const {
  const int N = probs_.dim(0), C = probs_.dim(1);
  Tensor g({N, C});
  const float s = loss_scale / static_cast<float>(N);
  for (int n = 0; n < N; ++n)
    for (int c = 0; c < C; ++c)
      g.at(n, c) = s * (probs_.at(n, c) - (labels_[n] == c ? 1.0f : 0.0f));
  return g;
}

int SoftmaxCrossEntropy::correct(const Tensor& logits,
                                 const std::vector<int>& labels) const {
  const int N = logits.dim(0), C = logits.dim(1);
  int ok = 0;
  for (int n = 0; n < N; ++n) {
    int best = 0;
    for (int c = 1; c < C; ++c)
      if (logits.at(n, c) > logits.at(n, best)) best = c;
    if (best == labels[n]) ++ok;
  }
  return ok;
}

}  // namespace srmac
