#pragma once

#include "nn/module.hpp"
#include "rng/xoshiro.hpp"

namespace srmac {

/// He (Kaiming) normal initialization for every conv/linear weight in the
/// model; BN parameters keep their (1, 0) defaults; biases start at zero.
/// fan_in is inferred from the parameter's second dimension.
void he_init(Layer& model, uint64_t seed);

/// Total number of trainable scalars.
int64_t param_count(Layer& model);

}  // namespace srmac
