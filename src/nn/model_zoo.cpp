#include "nn/model_zoo.hpp"

#include <cstdio>
#include <cstdlib>

#include "nn/init.hpp"
#include "nn/mlp.hpp"
#include "nn/resnet.hpp"
#include "nn/vgg.hpp"
#include "rng/xoshiro.hpp"

namespace srmac {

namespace {

/// Parses a strictly positive decimal int in [lo, hi] from `s`, advancing
/// past the digits. Rejects empty runs and (via the hi bound) oversized
/// values before they can grow a multiplication.
bool parse_bounded_int(const char*& s, int lo, int hi, int* out) {
  if (*s < '0' || *s > '9') return false;
  long v = 0;
  while (*s >= '0' && *s <= '9') {
    v = v * 10 + (*s - '0');
    if (v > hi) return false;
    ++s;
  }
  if (v < lo) return false;
  *out = static_cast<int>(v);
  return true;
}

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

bool parse_into(const std::string& spec, ModelSpec* m, std::string* error) {
  m->name = spec;
  const char* s = spec.c_str();
  if (spec.rfind("mlp:", 0) == 0) {
    m->kind = ModelSpec::Kind::kMlp;
    s += 4;
    if (!parse_bounded_int(s, 1, 4096, &m->width) || *s++ != ',' ||
        !parse_bounded_int(s, 1, 64, &m->depth) || *s != '\0')
      return fail(error, "mlp spec wants \"mlp:W,D\" with W in 1..4096 and D "
                         "in 1..64");
    return true;
  }
  if (spec.rfind("resnet20", 0) == 0) {
    m->kind = ModelSpec::Kind::kResnet20;
    s += 8;
    if (*s == '\0') return true;  // bare "resnet20": the 16x16 bench shape
    if (*s++ != ':' || !parse_bounded_int(s, 8, 128, &m->input_size) ||
        *s != '\0')
      return fail(error,
                  "resnet20 spec wants \"resnet20[:S]\" with S in 8..128");
    return true;
  }
  if (spec.rfind("vgg_mini:", 0) == 0) {
    m->kind = ModelSpec::Kind::kVggMini;
    s += 9;
    if (!parse_bounded_int(s, 2, 1000, &m->classes) || *s++ != ',' ||
        !parse_bounded_int(s, 1, 256, &m->base))
      return fail(error, "vgg_mini spec wants \"vgg_mini:C,B[,S]\" with C in "
                         "2..1000, B in 1..256, S in 8..128");
    if (*s == '\0') return true;
    if (*s++ != ',' || !parse_bounded_int(s, 8, 128, &m->input_size) ||
        *s != '\0')
      return fail(error, "vgg_mini spec wants \"vgg_mini:C,B[,S]\" with S in "
                         "8..128");
    return true;
  }
  return fail(error, "unknown model \"" + spec +
                         "\" (mlp:W,D | resnet20[:S] | vgg_mini:C,B[,S])");
}

}  // namespace

std::optional<ModelSpec> ModelSpec::parse(const std::string& spec,
                                          std::string* error) {
  ModelSpec m;
  if (!parse_into(spec, &m, error)) return std::nullopt;
  return m;
}

ModelSpec ModelSpec::parse_or_die(const std::string& spec) {
  std::string error;
  std::optional<ModelSpec> m = parse(spec, &error);
  if (!m) {
    std::fprintf(stderr, "error: bad model spec \"%s\": %s\n", spec.c_str(),
                 error.c_str());
    std::exit(2);
  }
  return *m;
}

std::unique_ptr<Sequential> ModelSpec::build(uint64_t init_seed) const {
  std::unique_ptr<Sequential> net;
  switch (kind) {
    case Kind::kMlp:
      net = make_mlp(width, std::vector<int>(depth, width), 10);
      break;
    case Kind::kResnet20:
      net = make_resnet20(10, 0.25f);
      break;
    case Kind::kVggMini:
      net = make_vgg_mini(classes, base);
      break;
  }
  he_init(*net, init_seed);
  return net;
}

std::vector<int> ModelSpec::input_shape() const {
  if (kind == Kind::kMlp) return {width};
  return {3, input_size, input_size};
}

Tensor ModelSpec::sample(int i) const {
  std::vector<int> shape = input_shape();
  shape.insert(shape.begin(), 1);
  Tensor x(shape);
  Xoshiro256 rng(500 + static_cast<uint64_t>(i));
  for (int64_t j = 0; j < x.numel(); ++j)
    x[j] = static_cast<float>(rng.normal());
  return x;
}

}  // namespace srmac
