#pragma once

#include <memory>

#include "nn/layers.hpp"

namespace srmac {

/// A ResNet basic block: conv3x3-BN-ReLU-conv3x3-BN + identity/projection
/// shortcut, final ReLU. Stride > 1 downsamples via the first conv and a
/// 1x1 projection shortcut.
class BasicBlock : public Layer {
 public:
  BasicBlock(int in_ch, int out_ch, int stride);
  Tensor forward(const ComputeContext& ctx, const Tensor& x, bool training) override;
  /// Coalesced inference: the same child walk and context forks as
  /// forward(), with each child seeing the whole batch — so the convs'
  /// GEMMs coalesce into per-layer gemm_batch dispatches (bit-identical to
  /// the per-sample walk).
  void forward_batch(const ComputeContext& ctx,
                     std::vector<Tensor>& xs) override;
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "BasicBlock"; }

  // Child accessors for the model compiler: the lowering pass replays
  // forward_batch()'s child order and fork salts from these.
  Conv2d& conv1() { return conv1_; }
  Conv2d& conv2() { return conv2_; }
  BatchNorm2d& bn1() { return bn1_; }
  BatchNorm2d& bn2() { return bn2_; }
  bool has_projection() const { return project_; }
  Conv2d* proj() { return proj_.get(); }
  BatchNorm2d* proj_bn() { return proj_bn_.get(); }

 private:
  Conv2d conv1_, conv2_;
  BatchNorm2d bn1_, bn2_;
  ReLU relu1_, relu2_;
  bool project_;
  std::unique_ptr<Conv2d> proj_;
  std::unique_ptr<BatchNorm2d> proj_bn_;
  Tensor x_cache_;
};

/// A ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand), the ResNet-50
/// building block.
class BottleneckBlock : public Layer {
 public:
  BottleneckBlock(int in_ch, int mid_ch, int out_ch, int stride);
  Tensor forward(const ComputeContext& ctx, const Tensor& x, bool training) override;
  /// Coalesced inference walk, as BasicBlock::forward_batch.
  void forward_batch(const ComputeContext& ctx,
                     std::vector<Tensor>& xs) override;
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "BottleneckBlock"; }

  // Child accessors for the model compiler (as BasicBlock's).
  Conv2d& conv1() { return conv1_; }
  Conv2d& conv2() { return conv2_; }
  Conv2d& conv3() { return conv3_; }
  BatchNorm2d& bn1() { return bn1_; }
  BatchNorm2d& bn2() { return bn2_; }
  BatchNorm2d& bn3() { return bn3_; }
  bool has_projection() const { return project_; }
  Conv2d* proj() { return proj_.get(); }
  BatchNorm2d* proj_bn() { return proj_bn_.get(); }

 private:
  Conv2d conv1_, conv2_, conv3_;
  BatchNorm2d bn1_, bn2_, bn3_;
  ReLU relu1_, relu2_, relu3_;
  bool project_;
  std::unique_ptr<Conv2d> proj_;
  std::unique_ptr<BatchNorm2d> proj_bn_;
};

/// ResNet-20 for 32x32 inputs (the CIFAR-10 architecture of Sec. IV-A):
/// conv3x3(16) + 3 stages x 3 basic blocks (16/32/64) + GAP + FC(classes).
/// `width_mult` scales channel counts for the budget-reduced runs; 1.0 is
/// the paper's model (~0.27M parameters).
std::unique_ptr<Sequential> make_resnet20(int classes = 10,
                                          float width_mult = 1.0f);

/// A ResNet-50-style bottleneck network scaled for 32x32 inputs (stands in
/// for the paper's ResNet-50/Imagewoof experiment; see DESIGN.md §4).
/// `blocks_per_stage` 3 gives the classic (3,4,6,3)-lite variant used here.
std::unique_ptr<Sequential> make_resnet50_small(int classes = 10,
                                                float width_mult = 1.0f);

}  // namespace srmac
