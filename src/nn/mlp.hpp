#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace srmac {

/// Builds a fully-connected classifier: Flatten, then Linear-ReLU pairs
/// over `hidden` widths, then a Linear head to `classes`. The smallest
/// model in the zoo — quick experiments, optimizer ablations and unit
/// tests run it through the bit-accurate GEMM path in milliseconds.
///
/// `in_features` is the flattened input size (e.g. 3*32*32 for CIFAR-shape
/// images).
std::unique_ptr<Sequential> make_mlp(int in_features,
                                     const std::vector<int>& hidden,
                                     int classes = 10);

}  // namespace srmac
