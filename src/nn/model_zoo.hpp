#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace srmac {

/// One string names a model everywhere: the serving benches, the serve
/// daemon, loadgen, the C API, and checkpoint headers all build (and
/// rebuild) architectures from the same spec grammar, so a model tag
/// embedded in a checkpoint is enough to reconstruct the graph it was
/// saved from (docs/PERSISTENCE.md).
///
/// Grammar:
///   "mlp:W,D"           W-wide MLP with D hidden layers, input (W,)
///   "resnet20[:S]"      width-0.25 CIFAR ResNet-20, input (3,S,S); S
///                       defaults to 16 (the bench shape; the serving
///                       example uses :32)
///   "vgg_mini:C,B[,S]"  shallow VGG with C classes and base width B,
///                       input (3,S,S), S defaults to 16
///
/// `build(seed)` He-initializes deterministically, so two processes that
/// build the same spec with the same seed hold bitwise-identical weights —
/// the anchor under every cross-process bitwise check. `sample(i)` derives
/// the i-th deterministic pseudo-random input the same way in every binary,
/// so a wire client can verify served outputs against its own offline
/// forward of "the same" sample.
struct ModelSpec {
  enum class Kind { kMlp, kResnet20, kVggMini };

  std::string name = "mlp:64,3";  ///< canonical tag (what parse consumed)
  Kind kind = Kind::kMlp;
  int width = 64, depth = 3;  ///< mlp
  int classes = 10, base = 8;  ///< vgg_mini
  int input_size = 16;         ///< conv-model spatial size

  /// Parses the grammar above; nullopt (with a message in *error when
  /// non-null) on malformed specs or out-of-range sizes. Model tags arrive
  /// from checkpoints and wire handshakes, so this is a trust boundary:
  /// every field is range-checked.
  static std::optional<ModelSpec> parse(const std::string& spec,
                                        std::string* error = nullptr);

  /// parse() that prints the error plus the grammar and exits — CLI use.
  static ModelSpec parse_or_die(const std::string& spec);

  /// Builds + He-initializes the architecture (deterministic in `seed`).
  std::unique_ptr<Sequential> build(uint64_t init_seed = 0xBE7C) const;

  /// Per-sample input shape, without the batch dimension.
  std::vector<int> input_shape() const;

  /// The i-th deterministic pseudo-random sample, batch dimension 1.
  Tensor sample(int i) const;
};

}  // namespace srmac
