#pragma once

#include "nn/module.hpp"

namespace srmac {

/// 2-D convolution (no bias — every conv here is followed by BatchNorm, as
/// in ResNet/VGG-BN). Forward and both backward GEMMs run through the
/// compute context (im2col + matmul).
class Conv2d : public Layer {
 public:
  Conv2d(int in_ch, int out_ch, int k, int stride = 1, int pad = -1);
  Tensor forward(const ComputeContext& ctx, const Tensor& x, bool training) override;
  /// Coalesced inference: every sample's im2col GEMM joins one gemm_batch
  /// (the cached weight plane is fetched once and shared across items),
  /// bit-identical to per-sample forward. Falls back to the base loop on
  /// backends without gemm_batch support.
  void forward_batch(const ComputeContext& ctx,
                     std::vector<Tensor>& xs) override;
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override;
  void collect_params(std::vector<Param*>& out) override { out.push_back(&w_); }
  std::string name() const override { return "Conv2d"; }
  Param& weight() { return w_; }

  // Geometry accessors for the model compiler's lowering pass.
  int in_channels() const { return in_ch_; }
  int out_channels() const { return out_ch_; }
  int kernel() const { return k_; }
  int stride() const { return stride_; }
  int padding() const { return pad_; }

 private:
  /// Rebuilds cols_ (K x N*L) from x through im2col, reusing the member
  /// scratch buffers; parallel over the batch.
  void build_cols(const ComputeContext& ctx, const Tensor& x, int oh, int ow);

  int in_ch_, out_ch_, k_, stride_, pad_;
  Param w_;        // (out_ch, in_ch*k*k)
  Tensor x_cache_; // input needed for dW
  WeightQuantCache wq_;       // quantized weight planes (fwd + bwd formats)
  std::vector<float> cols_;   // im2col scratch, reused across calls
};

/// Fully connected layer with bias.
class Linear : public Layer {
 public:
  Linear(int in_f, int out_f);
  Tensor forward(const ComputeContext& ctx, const Tensor& x, bool training) override;
  /// Coalesced inference: one gemm_batch over the samples' row-vector
  /// GEMMs, which all multiply against the same cached transposed weight
  /// plane — the plane packs once per batch instead of once per request.
  void forward_batch(const ComputeContext& ctx,
                     std::vector<Tensor>& xs) override;
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override;
  void collect_params(std::vector<Param*>& out) override {
    out.push_back(&w_);
    out.push_back(&b_);
  }
  std::string name() const override { return "Linear"; }
  Param& weight() { return w_; }
  Param& bias() { return b_; }
  int in_features() const { return in_f_; }
  int out_features() const { return out_f_; }

 private:
  int in_f_, out_f_;
  Param w_, b_;
  Tensor x_cache_;
  WeightQuantCache wq_;  // quantized weight planes (fwd + bwd formats)
};

/// Batch normalization over (N, H, W) per channel. Pointwise math stays in
/// FP32 (the paper quantizes GEMMs only).
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int ch, float momentum = 0.1f, float eps = 1e-5f);
  Tensor forward(const ComputeContext& ctx, const Tensor& x, bool training) override;
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override;
  void collect_params(std::vector<Param*>& out) override {
    out.push_back(&gamma_);
    out.push_back(&beta_);
  }
  std::string name() const override { return "BatchNorm2d"; }

  // Inference-math inputs for the model compiler's BN fold: the compiled
  // affine epilogue must reproduce forward()'s exact expression from these.
  int channels() const { return ch_; }
  float eps() const { return eps_; }
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int ch_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  Tensor xhat_cache_, invstd_cache_;
  std::vector<int> in_shape_;
};

class ReLU : public Layer {
 public:
  Tensor forward(const ComputeContext& ctx, const Tensor& x, bool training) override;
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;
};

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int k, int stride = -1);
  Tensor forward(const ComputeContext& ctx, const Tensor& x, bool training) override;
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override;
  std::string name() const override { return "MaxPool2d"; }
  int kernel() const { return k_; }
  int stride() const { return stride_; }

 private:
  int k_, stride_;
  Tensor argmax_;
  std::vector<int> in_shape_;
};

/// Global average pooling (N,C,H,W) -> (N,C).
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const ComputeContext& ctx, const Tensor& x, bool training) override;
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int> in_shape_;
};

class Flatten : public Layer {
 public:
  Tensor forward(const ComputeContext& ctx, const Tensor& x, bool training) override;
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int> in_shape_;
};

/// Softmax + cross-entropy head. forward_loss returns the mean loss and
/// caches softmax probabilities; backward_loss produces dlogits already
/// scaled by `loss_scale` (the dynamic loss-scaling hook of Sec. IV-A).
class SoftmaxCrossEntropy {
 public:
  float forward_loss(const Tensor& logits, const std::vector<int>& labels);
  Tensor backward_loss(float loss_scale) const;
  int correct(const Tensor& logits, const std::vector<int>& labels) const;

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

}  // namespace srmac
