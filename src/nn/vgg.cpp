#include "nn/vgg.hpp"

#include <algorithm>

namespace srmac {

namespace {
int scaled(int ch, float mult) { return std::max(4, static_cast<int>(ch * mult)); }

void conv_bn_relu(Sequential& net, int in_ch, int out_ch) {
  net.add(std::make_unique<Conv2d>(in_ch, out_ch, 3, 1));
  net.add(std::make_unique<BatchNorm2d>(out_ch));
  net.add(std::make_unique<ReLU>());
}
}  // namespace

std::unique_ptr<Sequential> make_vgg16(int classes, float width_mult) {
  auto net = std::make_unique<Sequential>();
  // Per-block channel plan of VGG16.
  const int plan[5][3] = {{64, 64, 0},
                          {128, 128, 0},
                          {256, 256, 256},
                          {512, 512, 512},
                          {512, 512, 512}};
  int in_ch = 3;
  for (const auto& block : plan) {
    for (int c : block) {
      if (c == 0) continue;
      const int out = scaled(c, width_mult);
      conv_bn_relu(*net, in_ch, out);
      in_ch = out;
    }
    net->add(std::make_unique<MaxPool2d>(2));
  }
  // 32x32 input -> 1x1 after five pools.
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(in_ch, classes));
  return net;
}

std::unique_ptr<Sequential> make_vgg_mini(int classes, int base) {
  auto net = std::make_unique<Sequential>();
  conv_bn_relu(*net, 3, base);
  net->add(std::make_unique<MaxPool2d>(2));
  conv_bn_relu(*net, base, base * 2);
  net->add(std::make_unique<MaxPool2d>(2));
  conv_bn_relu(*net, base * 2, base * 4);
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(base * 4, classes));
  return net;
}

}  // namespace srmac
