#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace srmac {

/// A trainable parameter with its gradient and optimizer slot.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  Tensor momentum;
  bool decay = true;  ///< weight decay applies (off for BN scale/bias)

  /// Incremented by every writer of `value` (optimizer steps, init,
  /// checkpoint restore) so layers can cache derived data — notably the
  /// quantized weight bit-planes the bit-accurate GEMMs consume.
  uint64_t version = 0;
  void bump() { ++version; }
};

/// Caches the quantized (and optionally 2-D-transposed) bit-plane of a
/// weight matrix per multiplier format, keyed on Param::version: weights
/// are requantized once per optimizer step instead of on every
/// forward/backward GEMM. Layers own one cache per weight; a cache holds
/// one plane per (format, transposed) pair (two formats under HFP8).
class WeightQuantCache {
 public:
  /// Bits of `p.value` (2-D, row-major) quantized into `fmt` with RN;
  /// `transposed` returns the bit-plane of value^T. Recomputes only when
  /// p.version (or the underlying storage) changed.
  const std::vector<uint32_t>& get(const Param& p, const FpFormat& fmt,
                                   bool transposed);

 private:
  struct Plane {
    FpFormat fmt;
    bool transposed = false;
    uint64_t version = 0;
    const float* data = nullptr;  ///< storage identity guard
    std::vector<uint32_t> bits;
  };
  // deque, not vector: get() hands out references to plane bits, which must
  // survive a later get() growing the container (vector reallocation would
  // dangle them).
  std::deque<Plane> planes_;
};

/// Base class for layers with manual forward/backward. Layers cache what
/// they need for the backward pass internally; `backward` consumes the
/// gradient w.r.t. the output and returns the gradient w.r.t. the input,
/// accumulating parameter gradients into their `grad` tensors.
///
/// The ComputeContext decides which backend the layer's GEMMs run on — the
/// FP32 reference or a bit-accurate MAC emulation backend (both directions,
/// matching the paper: "all GEMM operations during training (FWD and BWD
/// passes) are performed using low-precision MAC units") — and its
/// QuantPolicy decides the per-pass (and, via for_layer, per-layer)
/// quantization formats.
class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor forward(const ComputeContext& ctx, const Tensor& x,
                         bool training) = 0;
  virtual Tensor backward(const ComputeContext& ctx, const Tensor& gout) = 0;

  /// Inference-mode forward of several *independent* single-sample
  /// activations (each xs[i] has batch dimension 1), updated in place —
  /// the serving stack's coalescing entry (docs/SERVING.md). The contract
  /// is bitwise: xs[i] after the call equals forward(ctx, xs[i], false),
  /// for every i. Samples must therefore keep their own GEMM problems and
  /// seeds — stacking them into one tensor would shift per-element seed
  /// derivation — so GEMM layers override this to submit all samples'
  /// problems as one MatmulBackend::gemm_batch (shared weight planes
  /// quantize+pack once per batch instead of once per sample) and
  /// composite blocks to walk their children once per layer. The default
  /// is the plain per-sample loop, trivially bit-identical.
  virtual void forward_batch(const ComputeContext& ctx,
                             std::vector<Tensor>& xs) {
    for (Tensor& x : xs) x = forward(ctx, x, /*training=*/false);
  }

  virtual void collect_params(std::vector<Param*>& out) { (void)out; }
  virtual std::string name() const = 0;
};

/// A plain sequential container (also the building block of the ResNet /
/// VGG graphs).
class Sequential : public Layer {
 public:
  Sequential() = default;
  void add(std::unique_ptr<Layer> l) { layers_.push_back(std::move(l)); }
  Tensor forward(const ComputeContext& ctx, const Tensor& x,
                 bool training) override {
    Tensor h = x;
    int salt = 0;
    for (auto& l : layers_)
      h = l->forward(ctx.fork(++salt).for_layer(l->name()), h, training);
    return h;
  }
  void forward_batch(const ComputeContext& ctx,
                     std::vector<Tensor>& xs) override {
    // Same per-layer fork/rule chain as forward(), applied once per layer
    // for the whole coalesced batch — each child sees every sample before
    // the next child runs, so its GEMMs can share one gemm_batch dispatch.
    int salt = 0;
    for (auto& l : layers_)
      l->forward_batch(ctx.fork(++salt).for_layer(l->name()), xs);
  }
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override {
    // Cross-layer weight-gradient bucketing: on a batching backend the
    // layers' dW GEMMs are deferred into one MatmulBatch and flushed in
    // buckets of kGradBucket problems, so gemm_batch sees multi-problem
    // submissions spanning layers (more problems than shards) instead of
    // one pair per layer. Bounded buckets cap how long deferred operand
    // copies (MatmulBatch::scratch) stay alive. The data-gradient chain
    // stays serial — only the independent dW GEMMs defer — and per-item
    // seeds make the bits identical to per-layer dispatch. A Sequential
    // nested under one that already buckets just forwards the pointer.
    std::optional<MatmulBatch> bucket;
    ComputeContext c = ctx;
    if (!ctx.grad_batch && ctx.backend && ctx.backend->supports_batch()) {
      bucket.emplace(ctx);
      c.grad_batch = &*bucket;
    }
    Tensor g = gout;
    int salt = static_cast<int>(layers_.size());
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->backward(c.fork(1000 + salt--).for_layer((*it)->name()), g);
      if (bucket && (bucket->size() >= kGradBucket ||
                     bucket->staged_floats() >= kGradBucketFloats))
        bucket->flush();
    }
    if (bucket) bucket->flush();
    return g;
  }

  /// Deferred weight-gradient GEMMs per bucket flush; a handful keeps the
  /// shard queues fed without holding every layer's staged operands alive
  /// at once.
  static constexpr size_t kGradBucket = 4;

  /// Byte bound on the same bucket (as floats): conv layers stage their
  /// im2col cols^T and reshaped gradient per deferred dW, which dwarfs the
  /// problem count as a memory measure — a bucket holding big planes
  /// flushes early so peak backward memory stays near the per-layer-flush
  /// baseline (one large conv stages ~a few MB; 16 MB ≈ a handful). The
  /// bound is enforced by Conv2d/Linear at the *end* of their own backward
  /// (the safe flush point: their staged operands are dead, everyone
  /// else's are layer members or batch-owned), so composite blocks this
  /// Sequential sees as one child cannot overshoot it; the check in the
  /// loop above is the coarse per-child backstop.
  static constexpr size_t kGradBucketFloats = (16u << 20) / sizeof(float);
  void collect_params(std::vector<Param*>& out) override {
    for (auto& l : layers_) l->collect_params(out);
  }
  std::string name() const override { return "Sequential"; }
  size_t size() const { return layers_.size(); }

  /// The i-th child, in the order forward()/forward_batch() walk them — the
  /// introspection surface the model compiler lowers through (src/compile).
  Layer& child(size_t i) const { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace srmac
