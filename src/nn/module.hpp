#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace srmac {

/// A trainable parameter with its gradient and optimizer slot.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  Tensor momentum;
  bool decay = true;  ///< weight decay applies (off for BN scale/bias)
};

/// Base class for layers with manual forward/backward. Layers cache what
/// they need for the backward pass internally; `backward` consumes the
/// gradient w.r.t. the output and returns the gradient w.r.t. the input,
/// accumulating parameter gradients into their `grad` tensors.
///
/// The ComputeContext decides whether the layer's GEMMs run in FP32 or
/// through the bit-accurate MAC emulation (both directions, matching the
/// paper: "all GEMM operations during training (FWD and BWD passes) are
/// performed using low-precision MAC units").
class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor forward(const ComputeContext& ctx, const Tensor& x,
                         bool training) = 0;
  virtual Tensor backward(const ComputeContext& ctx, const Tensor& gout) = 0;
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }
  virtual std::string name() const = 0;
};

/// A plain sequential container (also the building block of the ResNet /
/// VGG graphs).
class Sequential : public Layer {
 public:
  Sequential() = default;
  void add(std::unique_ptr<Layer> l) { layers_.push_back(std::move(l)); }
  Tensor forward(const ComputeContext& ctx, const Tensor& x,
                 bool training) override {
    Tensor h = x;
    int salt = 0;
    for (auto& l : layers_) h = l->forward(ctx.fork(++salt), h, training);
    return h;
  }
  Tensor backward(const ComputeContext& ctx, const Tensor& gout) override {
    Tensor g = gout;
    int salt = static_cast<int>(layers_.size());
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
      g = (*it)->backward(ctx.fork(1000 + salt--), g);
    return g;
  }
  void collect_params(std::vector<Param*>& out) override {
    for (auto& l : layers_) l->collect_params(out);
  }
  std::string name() const override { return "Sequential"; }
  size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace srmac
