#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/backend.hpp"

namespace srmac {

/// Process-wide string-keyed registry of MatmulBackend implementations.
/// The six built-ins ("fp32", "fused", "reference", "batched", "sharded",
/// "systolic") are registered inside instance() — not by static
/// initializers, which a static-library link would silently drop — and
/// additional backends (remote, test doubles) register at runtime under
/// new names without touching any call site. register_backend on an
/// existing name replaces the factory; shared instances get() already
/// handed out stay alive and unchanged.
class BackendRegistry {
 public:
  using Factory = std::function<std::shared_ptr<MatmulBackend>()>;

  static BackendRegistry& instance();

  /// Registers (or replaces) the factory for `name`. Instances already
  /// handed out by get() stay alive and unchanged.
  void register_backend(const std::string& name, Factory factory);

  /// Fresh instance of `name`. Throws std::invalid_argument listing the
  /// registered names when the key is unknown.
  std::shared_ptr<MatmulBackend> create(const std::string& name) const;

  /// The shared instance of `name`, created on first request and kept for
  /// the life of the process — the pointer ComputeContext carries.
  /// Throws std::invalid_argument on unknown names.
  const MatmulBackend* get(const std::string& name);

  std::vector<std::string> names() const;
  bool contains(const std::string& name) const;

 private:
  BackendRegistry();

  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
  std::map<std::string, std::shared_ptr<MatmulBackend>> shared_;
};

}  // namespace srmac
