#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/drift_tracker.hpp"
#include "mac/mac_config.hpp"

namespace srmac {

/// Aggregated counters for one backend (one row of a snapshot).
struct BackendStats {
  uint64_t gemms = 0;    ///< GEMM dispatches (batch items count individually)
  uint64_t macs = 0;     ///< MAC steps retired (sum of M*N*K)
  uint64_t batches = 0;         ///< gemm_batch submissions
  uint64_t batch_problems = 0;  ///< problems inside those submissions
  uint64_t shard_migrations = 0;  ///< problems stolen across worker shards
  double seconds = 0.0;  ///< wall time inside the backend
};

/// Per-replica serving counters of a fleet (ClusterController,
/// docs/SERVING.md "Fleet & fault tolerance"). Indexed by replica id in
/// TelemetrySnapshot::serve_replicas; a standalone EmuServer populates
/// index 0. Routing-side rows (sheds/retries/breaker transitions) live in
/// the controller's own sink, execution-side rows (batches/failures/
/// deadline misses) in each replica engine's sink.
struct ServeReplicaStats {
  uint64_t requests = 0;         ///< requests resolved with a result
  uint64_t batches = 0;          ///< micro-batches collected
  uint64_t failures = 0;         ///< micro-batches that failed (kFault)
  uint64_t deadline_misses = 0;  ///< requests expired at admission/collect
  uint64_t sheds = 0;            ///< requests shed after this replica refused
  uint64_t retries = 0;          ///< submissions this replica rejected and
                                 ///< the controller retried elsewhere
  uint64_t breaker_opens = 0;       ///< closed/half-open -> open transitions
  uint64_t breaker_half_opens = 0;  ///< open -> half-open (probe admitted)
  uint64_t breaker_closes = 0;      ///< half-open -> closed (probe succeeded)
};

/// Point-in-time copy of a Telemetry sink's counters.
struct TelemetrySnapshot {
  uint64_t gemms = 0;
  uint64_t macs = 0;
  uint64_t bytes_quantized = 0;  ///< operand bytes freshly quantized
  uint64_t batches = 0;          ///< gemm_batch submissions
  uint64_t batch_problems = 0;   ///< problems inside those submissions
  uint64_t shard_migrations = 0;  ///< problems stolen across worker shards
  /// B planes the sharded scheduler packed, indexed by shard (grows to the
  /// largest shard count seen; a plane reused across a batch packs once per
  /// shard that touches it, not once per problem).
  std::vector<uint64_t> planes_packed_per_shard;
  double seconds = 0.0;
  std::map<std::string, BackendStats> per_backend;

  // ---- model-compiler counters (CompiledModel, docs/COMPILER.md) ----
  uint64_t compile_planes_packed = 0;  ///< weight planes quantized+packed by
                                       ///< compiles and refresh() rebuilds
  uint64_t compile_folds = 0;     ///< ops folded away at compile (BN affines
                                  ///< absorbed into GEMM tails, Flattens)
  uint64_t compile_fusions = 0;   ///< epilogue steps fused into GEMM tails
                                  ///< (affine/bias/ReLU/residual joins)
  uint64_t compile_rebuilds = 0;  ///< planes rebuilt by refresh() after a
                                  ///< Param::version bump (checkpoint load)
  /// Activation operand bytes the compiled executor quantized inside its
  /// own kernels, per request. Compiled serving keeps `bytes_quantized` at
  /// zero — that counter tracks the eager dispatch layer, whose per-request
  /// weight/plane requantization is what compilation eliminates — while
  /// this one keeps the per-request activation quantization (unavoidable in
  /// any mode: inputs arrive as floats) honestly accounted.
  uint64_t compile_activation_bytes = 0;

  // ---- serving-side counters (EmuServer, docs/SERVING.md) ----
  uint64_t serve_requests = 0;  ///< requests completed by the server
  uint64_t serve_batches = 0;   ///< micro-batches executed
  /// Wide GEMM dispatches that merged several same-shape per-sample
  /// problems into one kernel (grouped execution, docs/SERVING.md), and the
  /// per-sample problems they absorbed. gemms counts the merged dispatch
  /// once; grouped_samples - gemms_grouped is the number of dispatches the
  /// merge eliminated.
  uint64_t gemms_grouped = 0;
  uint64_t grouped_samples = 0;
  /// serve_batch_hist[s] = micro-batches that coalesced exactly s requests
  /// (index 0 unused; grows to the largest batch seen).
  std::vector<uint64_t> serve_batch_hist;
  /// Per-request submit->completion latency samples in microseconds, in
  /// completion order — the series behind the percentile accessors. The
  /// sink bounds it at Telemetry::kServeLatencySampleCap by deterministic
  /// decimation (when full, every other retained sample is dropped and
  /// only every 2nd/4th/... new request is sampled), so a long-lived
  /// session keeps fixed memory and the percentiles stay representative.
  /// Benches reset() per repetition, which also keeps JSON rows per-run
  /// instead of cumulative (below the cap the series is exact).
  std::vector<uint64_t> serve_latency_us;

  // ---- fleet counters (ClusterController, docs/SERVING.md) ----
  uint64_t serve_sheds = 0;     ///< requests failed kOverloaded (load shed)
  uint64_t serve_retries = 0;   ///< rejected submissions retried elsewhere
  uint64_t serve_deadline_misses = 0;  ///< requests failed kDeadline
  uint64_t serve_failed_batches = 0;   ///< micro-batches failed kFault
  uint64_t serve_breaker_transitions = 0;  ///< total breaker state changes
  /// Per-replica rows (grows to the largest replica id seen + 1).
  std::vector<ServeReplicaStats> serve_replicas;

  // ---- shadow A/B counters (EmuServer shadow path, docs/SERVING.md) ----
  uint64_t serve_shadow_selected = 0;  ///< requests the trace-id hash picked
  uint64_t serve_shadow_runs = 0;      ///< shadow forwards actually executed
  uint64_t serve_shadow_sheds = 0;     ///< selected samples dropped under
                                       ///< overload (typed shed, never blocks
                                       ///< the reply path)
  /// Accuracy-drift series per (primary, shadow) scenario pair, copied from
  /// the sink's DriftTracker.
  std::vector<DriftPairSnapshot> drift;

  /// The q-th latency percentile (q in [0,100], e.g. 50/95/99) over the
  /// recorded samples by nearest-rank; 0 when no requests were recorded.
  double serve_latency_percentile_us(double q) const;

  /// Mean coalesced batch size (requests per micro-batch); 0 when idle.
  double serve_mean_batch() const;

  /// Projects the recorded MAC count onto the hwcost layer: the energy the
  /// paper's ASIC MAC (asic_mac_cost of `cfg`) would have spent retiring
  /// the same number of MAC steps, in microjoules. energy_nw_mhz is
  /// femtojoules per cycle at one MAC per cycle.
  double projected_mac_energy_uj(const MacConfig& cfg) const;

  /// The whole snapshot as one compact JSON object (telemetry_json.cpp):
  /// counters, per-backend rows, compile/serve/fleet sections, shadow
  /// counters, and the drift pairs. The canonical emitter — bench_serve,
  /// bench_drift, serve_daemon, and the wire TELEMETRY frame all use it
  /// instead of hand-rolling the counter fields.
  std::string to_json() const;
};

/// One fleet replica row as a JSON object, keyed the way bench_serve's
/// replica_stats rows always were ("replica", "requests", "batches", ...).
std::string to_json(const ServeReplicaStats& row, int replica);

/// One drift pair snapshot as a JSON object: scenario pair, epsilons,
/// final-output series (max/mean-abs, mismatch rates, p50/p95/p99 of the
/// per-sample max-abs), and the per-layer rows.
std::string to_json(const DriftPairSnapshot& pair);

/// Thread-safe sink for the engine's execution counters: GEMM count, MAC
/// count, bytes quantized, and per-backend wall time. One mutex-guarded
/// record per GEMM dispatch (not per element), so the cost is invisible
/// next to any real GEMM. ComputeContext carries a non-owning pointer;
/// EmuEngine owns one sink per engine, and the layer benches read the
/// counters back through snapshot().
class Telemetry {
 public:
  /// Bound on the retained serve-latency samples (512 KiB of uint64_t):
  /// past it, the sink halves resolution instead of growing.
  static constexpr size_t kServeLatencySampleCap = 65536;

  /// Records one GEMM dispatched to `backend` covering M*N*K MAC steps.
  void record_gemm(const std::string& backend, int M, int N, int K,
                   double seconds);

  /// Records one gemm_batch dispatch of `problems` GEMMs totalling `macs`
  /// MAC steps. The problems also count into the per-problem gemms/macs
  /// counters (one batch of 4 reads as 4 GEMMs + 1 batch), so throughput
  /// math stays uniform whether or not work was batched.
  void record_batch(const std::string& backend, uint64_t problems,
                    uint64_t macs, double seconds);

  /// Records `values` operand words freshly quantized into `fmt`
  /// (byte-rounded per value: ceil(width/8)).
  void record_quantize(uint64_t values, const FpFormat& fmt);

  /// Records the shard-scheduling counters of one sharded gemm_batch
  /// dispatch: how many problems were stolen across shards, how many B
  /// planes each shard packed, and the operand bytes those per-shard packs
  /// quantized (deltas, added to the running totals; the bytes land in
  /// bytes_quantized, replacing the dispatcher's once-per-batch estimate).
  void record_sharded(const std::string& backend, uint64_t migrations,
                      const std::vector<uint64_t>& planes_packed_per_shard,
                      uint64_t plane_bytes_quantized);

  /// Records one grouped GEMM dispatch that merged `samples` same-shape
  /// per-sample problems into a single wide kernel. The dispatch itself
  /// also counts once through record_gemm, so gemms stays the number of
  /// kernels actually launched.
  void record_grouped_gemm(uint64_t samples);

  /// Records one executed micro-batch that coalesced `batch_size` requests,
  /// with each completed request's submit->completion latency in
  /// `latency_us[0..n)` (n == batch_size in the normal flow; the split
  /// exists so failed requests can count into the histogram without fake
  /// latency samples). `replica` selects the per-replica row; `ok=false`
  /// marks a failed batch (kFault) and counts into serve_failed_batches.
  void record_serve_batch(size_t batch_size, const uint64_t* latency_us,
                          size_t n, int replica = 0, bool ok = true);

  /// Records `n` requests that expired (failed ServeError::kDeadline) at
  /// `replica`'s admission edge or micro-batch collect.
  void record_serve_deadline_miss(int replica, uint64_t n);

  /// Records one request shed with ServeError::kOverloaded. `replica` is
  /// the last replica that refused it (-1: shed before any admission
  /// attempt, e.g. every breaker open — counts into the global total only).
  void record_serve_shed(int replica);

  /// Records one rejected submission to `replica` that the controller
  /// retried on another replica.
  void record_serve_retry(int replica);

  /// Records one circuit-breaker transition of `replica` into
  /// CircuitBreaker::State `to_state` (0 closed / 1 open / 2 half-open —
  /// kept as int so the telemetry layer stays decoupled from serve/).
  void record_breaker_transition(int replica, int to_state);

  /// Records `n` requests the shadow trace-id hash selected for A/B
  /// re-execution (EmuServer shadow path).
  void record_serve_shadow_selected(uint64_t n);

  /// Records `n` shadow forwards that actually executed.
  void record_serve_shadow_run(uint64_t n);

  /// Records `n` selected samples dropped because the session was loaded
  /// past ShadowConfig::shed_pending — shadow work sheds, it never delays
  /// the reply path.
  void record_serve_shadow_shed(uint64_t n);

  /// The accuracy-drift sink (shadow A/B comparisons land here; snapshots
  /// carry its pairs in TelemetrySnapshot::drift).
  DriftTracker& drift() { return drift_; }
  const DriftTracker& drift() const { return drift_; }

  /// Records one ModelCompiler lowering: how many weight planes it
  /// quantized+packed, how many ops it folded away, and how many epilogue
  /// steps it fused into GEMM tails.
  void record_compile(uint64_t planes_packed, uint64_t folds,
                      uint64_t fusions);

  /// Records `planes` weight planes CompiledModel::refresh() rebuilt after
  /// observing Param::version bumps (optimizer step or checkpoint load).
  void record_compile_rebuild(uint64_t planes);

  /// Records one compiled forward pass of `gemms` GEMMs totalling `macs`
  /// MAC steps, with `activation_bytes` bytes of activation operands freshly
  /// quantized inside the compiled kernels (byte-rounded per value at the
  /// per-op format, precomputed by the compiler). Lands in the gemms/macs
  /// totals under the "compiled" per-backend row and in
  /// compile_activation_bytes — never in bytes_quantized, which stays the
  /// eager dispatch layer's counter (and zero in compiled steady state).
  void record_compiled_forward(uint64_t gemms, uint64_t macs,
                               uint64_t activation_bytes, double seconds);

  TelemetrySnapshot snapshot() const;

  /// Zeroes every counter — GEMM/MAC/batch totals, per-backend rows, and
  /// the serving counters above. Benches call this per repetition so each
  /// JSON row reflects one run, not the engine's cumulative history.
  void reset();

 private:
  mutable std::mutex mu_;
  TelemetrySnapshot totals_;
  DriftTracker drift_;  ///< own mutex; snapshot() merges it in
  // Decimation state of the bounded serve-latency reservoir: only every
  // serve_lat_stride_-th completed request is sampled once the cap has
  // been hit (stride doubles on each compaction).
  uint64_t serve_lat_stride_ = 1;
  uint64_t serve_lat_seen_ = 0;
};

}  // namespace srmac
