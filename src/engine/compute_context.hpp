#pragma once

#include <cstdint>
#include <string>

#include "engine/backend.hpp"
#include "engine/quant_policy.hpp"
#include "engine/telemetry.hpp"

namespace srmac {

class MatmulBatch;  // tensor/tensor_ops.hpp — deferred-GEMM sink

/// How the training math executes: which backend runs the GEMMs, what the
/// quantization policy is, and the reproducibility/observability plumbing.
/// This replaces the old boolean-flag context (`bit_accurate`, `hfp8`,
/// `backward_pass`): the backend pointer selects the execution engine, the
/// QuantPolicy turns the per-pass format special cases into data, and the
/// pass marker says which of the policy's configurations applies.
///
/// Contexts are value types, copied freely (fork() per layer and step);
/// `backend` points into the process-lifetime BackendRegistry cache and
/// `telemetry` (optional) into an EmuEngine that must outlive the context.
struct ComputeContext {
  const MatmulBackend* backend = nullptr;  ///< never null after construction
  QuantPolicy policy;
  uint64_t seed = kDefaultSeed;  ///< base seed for per-element LFSRs
  int threads = 0;               ///< 0 = hardware concurrency
  Telemetry* telemetry = nullptr;
  GemmPass pass = GemmPass::kForward;

  /// When true (set by EmuServer under ServeConfig::grouped), batch-aware
  /// layers may merge the micro-batch's same-shape per-sample GEMMs into
  /// one wider dispatch, using the backend's seed-period contract
  /// (MatmulBackend::supports_grouped) so every sample keeps the exact
  /// seeds of its standalone forward — outputs stay bitwise identical to
  /// per-sample execution (docs/SERVING.md "Grouped execution").
  bool grouped = false;

  /// When non-null (set by Sequential::backward on a batching backend),
  /// layers defer their weight-gradient GEMM into this batch instead of
  /// dispatching it themselves — cross-layer gradient bucketing, flushed by
  /// the owner in bounded buckets. Operands of a deferred GEMM must stay
  /// valid until that flush: layer-owned caches qualify, locals go through
  /// MatmulBatch::scratch. Results are bit-identical either way (the item
  /// carries its own pass/seed; scheduling is invisible to the bits).
  MatmulBatch* grad_batch = nullptr;

  /// FP32 baseline context (the "fp32" backend).
  static ComputeContext fp32();

  /// Bit-accurate context: the "fused" engine under a uniform policy.
  static ComputeContext emulated(const MacConfig& cfg,
                                 uint64_t seed = kDefaultSeed);

  /// Context on the registry backend `backend_name` under `policy`.
  /// Throws std::invalid_argument for unknown names.
  static ComputeContext with_backend(const std::string& backend_name,
                                     const QuantPolicy& policy,
                                     uint64_t seed = kDefaultSeed,
                                     int threads = 0);

  /// Whether GEMMs quantize operands into the policy's MAC formats.
  bool bit_accurate() const { return backend && backend->bit_accurate(); }

  /// Derives a context with a decorrelated seed (per layer / per step).
  ComputeContext fork(uint64_t salt) const {
    ComputeContext c = *this;
    c.seed = seed * policy.fork_mult + salt;
    return c;
  }

  /// Marks the context as inside the backward pass (the trainer's top-level
  /// backward call; data-gradient GEMMs).
  ComputeContext backward() const {
    ComputeContext c = *this;
    c.pass = GemmPass::kBackwardData;
    return c;
  }

  /// Marks a weight-gradient GEMM (set by the layers around their dW GEMM).
  ComputeContext weight_grad() const {
    ComputeContext c = *this;
    c.pass = GemmPass::kBackwardWeight;
    return c;
  }

  /// Applies the policy's per-layer rule for `layer_name`, if any.
  ComputeContext for_layer(const std::string& layer_name) const;

  /// The policy's MAC configuration for this context's pass.
  const MacConfig& mac_config() const { return policy.mac_for(pass); }

  /// The multiplier-input format this context's GEMMs quantize into.
  const FpFormat& mul_fmt() const { return mac_config().mul_fmt; }

  /// mul_fmt() with the pass configuration's subnormal flag applied — the
  /// exact format operands are quantized into (cached weight planes must
  /// match it).
  FpFormat quant_fmt() const {
    const MacConfig& m = mac_config();
    return m.mul_fmt.with_subnormals(m.subnormals);
  }
};

}  // namespace srmac
