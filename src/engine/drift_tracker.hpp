#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace srmac {

/// Aggregated divergence between two runs of the same computation under two
/// MAC scenarios: element-wise |a-b| totals plus a bounded reservoir of
/// per-sample max-abs values for nearest-rank percentiles. One series per
/// comparison point (final output, or one layer).
struct DriftSeries {
  uint64_t samples = 0;  ///< comparisons recorded (one per sample)
  uint64_t elems = 0;    ///< elements compared across those samples
  double max_abs = 0.0;  ///< max |primary - shadow| over every element
  double sum_abs = 0.0;  ///< sum of |primary - shadow| (mean_abs numerator)

  /// mismatches[i] = elements with |primary - shadow| > epsilons[i] (the
  /// epsilon list lives on the owning pair snapshot).
  std::vector<uint64_t> mismatches;

  /// Per-sample max-abs values, in record order — the series behind
  /// maxabs_percentile(). Bounded at DriftTracker::kMaxAbsSampleCap by the
  /// same deterministic stride-doubling decimation the serve-latency
  /// reservoir uses, so a long-lived session keeps fixed memory.
  std::vector<double> maxabs_samples;

  double mean_abs() const {
    return elems ? sum_abs / static_cast<double>(elems) : 0.0;
  }

  /// Mismatch fraction at epsilons[i] over every element compared.
  double mismatch_rate(size_t i) const {
    return elems && i < mismatches.size()
               ? static_cast<double>(mismatches[i]) /
                     static_cast<double>(elems)
               : 0.0;
  }

  /// The q-th percentile (q in [0,100]) of the per-sample max-abs series by
  /// nearest-rank (same convention as serve_latency_percentile_us); 0 when
  /// nothing was recorded.
  double maxabs_percentile(double q) const;
};

/// One layer's divergence row of a scenario pair.
struct DriftLayerSnapshot {
  size_t index = 0;   ///< child index in Sequential walk order
  std::string layer;  ///< Layer::name() (not unique on its own; index is)
  DriftSeries series;
};

/// Point-in-time copy of everything recorded for one (primary, shadow)
/// scenario pair.
struct DriftPairSnapshot {
  std::string primary;           ///< scenario string of the serving session
  std::string shadow;            ///< scenario string of the shadow session
  std::vector<double> epsilons;  ///< mismatch thresholds, fixed at first record
  DriftSeries final_output;      ///< served output vs shadow output
  std::vector<DriftLayerSnapshot> layers;  ///< per-layer rows, ascending index
};

/// Thread-safe sink for accuracy-drift telemetry: every record_*() call
/// compares one sample's primary and shadow activations element-wise and
/// folds the result into the (primary, shadow) pair's series. Owned by
/// Telemetry (one tracker per engine sink); EmuServer's shadow path and the
/// C API's shadow sessions record into the *primary* engine's tracker, so a
/// snapshot of the serving sink carries both the serving counters and the
/// drift the shadow scenario would have introduced.
class DriftTracker {
 public:
  /// Bound on each series' retained per-sample max-abs values.
  static constexpr size_t kMaxAbsSampleCap = 4096;

  /// Default mismatch epsilons when the caller passes an empty list:
  /// {1e-6, 1e-3, 1e-2} — "bitwise-ish", "noise-level", "visible".
  static const std::vector<double>& default_epsilons();

  /// Records one sample's final-output comparison: n elements of the
  /// primary (served) output against the shadow output. `epsilons` is
  /// consulted on the pair's first record (empty = default_epsilons());
  /// later calls reuse the pair's stored thresholds.
  void record_final(const std::string& primary, const std::string& shadow,
                    const std::vector<double>& epsilons, const float* a,
                    const float* b, size_t n);

  /// Records one sample's post-layer comparison for child `index` (named
  /// `layer`) of the model walk.
  void record_layer(const std::string& primary, const std::string& shadow,
                    const std::vector<double>& epsilons, size_t index,
                    const std::string& layer, const float* a, const float* b,
                    size_t n);

  /// Copies of every pair's accumulated series, ordered by (primary,
  /// shadow) key.
  std::vector<DriftPairSnapshot> snapshot() const;

  void reset();

 private:
  struct SeriesState {
    DriftSeries s;
    uint64_t stride = 1;  ///< decimation stride of maxabs_samples
    uint64_t seen = 0;
    void record(const std::vector<double>& eps, const float* a,
                const float* b, size_t n);
  };
  struct LayerState {
    std::string name;
    SeriesState series;
  };
  struct PairState {
    std::vector<double> epsilons;
    SeriesState final_output;
    std::map<size_t, LayerState> layers;
  };

  PairState& pair_locked(const std::string& primary, const std::string& shadow,
                         const std::vector<double>& epsilons);

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, PairState> pairs_;
};

}  // namespace srmac
