#include "engine/session_spec.hpp"

#include "engine/emu_engine.hpp"

namespace srmac {

EmuEngine SessionSpec::build_engine() const {
  return EmuEngine::Builder().spec(*this).build();
}

}  // namespace srmac
