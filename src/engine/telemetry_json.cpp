#include <cinttypes>
#include <cstdio>
#include <string>

#include "engine/telemetry.hpp"

namespace srmac {

namespace {

void append_u64(std::string& out, const char* key, uint64_t v,
                bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64 "%s", key, v,
                comma ? ", " : "");
  out += buf;
}

void append_f64(std::string& out, const char* key, double v,
                bool comma = true) {
  char buf[96];
  // %.17g round-trips doubles; JSON has no inf/nan, clamp to 0 defensively.
  std::snprintf(buf, sizeof(buf), "\"%s\": %.17g%s", key,
                v == v && v * 0.0 == 0.0 ? v : 0.0, comma ? ", " : "");
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_series(std::string& out, const DriftSeries& s,
                   const std::vector<double>& epsilons) {
  out += '{';
  append_u64(out, "samples", s.samples);
  append_u64(out, "elems", s.elems);
  append_f64(out, "max_abs", s.max_abs);
  append_f64(out, "mean_abs", s.mean_abs());
  out += "\"mismatch_rates\": [";
  for (size_t i = 0; i < epsilons.size(); ++i) {
    if (i) out += ", ";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "{\"eps\": %.17g, \"rate\": %.17g}",
                  epsilons[i], s.mismatch_rate(i));
    out += buf;
  }
  out += "], ";
  append_f64(out, "p50_maxabs", s.maxabs_percentile(50));
  append_f64(out, "p95_maxabs", s.maxabs_percentile(95));
  append_f64(out, "p99_maxabs", s.maxabs_percentile(99), /*comma=*/false);
  out += '}';
}

}  // namespace

std::string to_json(const ServeReplicaStats& row, int replica) {
  std::string out = "{";
  append_u64(out, "replica", static_cast<uint64_t>(replica < 0 ? 0 : replica));
  append_u64(out, "requests", row.requests);
  append_u64(out, "batches", row.batches);
  append_u64(out, "failures", row.failures);
  append_u64(out, "deadline_misses", row.deadline_misses);
  append_u64(out, "sheds", row.sheds);
  append_u64(out, "retries", row.retries);
  append_u64(out, "breaker_opens", row.breaker_opens);
  append_u64(out, "breaker_half_opens", row.breaker_half_opens);
  append_u64(out, "breaker_closes", row.breaker_closes, /*comma=*/false);
  out += '}';
  return out;
}

std::string to_json(const DriftPairSnapshot& pair) {
  std::string out = "{\"primary\": ";
  append_escaped(out, pair.primary);
  out += ", \"shadow\": ";
  append_escaped(out, pair.shadow);
  out += ", \"epsilons\": [";
  for (size_t i = 0; i < pair.epsilons.size(); ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%.17g", i ? ", " : "",
                  pair.epsilons[i]);
    out += buf;
  }
  out += "], \"final\": ";
  append_series(out, pair.final_output, pair.epsilons);
  out += ", \"layers\": [";
  for (size_t i = 0; i < pair.layers.size(); ++i) {
    if (i) out += ", ";
    out += "{";
    append_u64(out, "index", pair.layers[i].index);
    out += "\"layer\": ";
    append_escaped(out, pair.layers[i].layer);
    out += ", \"series\": ";
    append_series(out, pair.layers[i].series, pair.epsilons);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string TelemetrySnapshot::to_json() const {
  std::string out = "{";
  append_u64(out, "gemms", gemms);
  append_u64(out, "macs", macs);
  append_u64(out, "bytes_quantized", bytes_quantized);
  append_u64(out, "batches", batches);
  append_u64(out, "batch_problems", batch_problems);
  append_u64(out, "shard_migrations", shard_migrations);
  append_f64(out, "seconds", seconds);
  out += "\"per_backend\": {";
  bool first = true;
  for (const auto& kv : per_backend) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, kv.first);
    out += ": {";
    append_u64(out, "gemms", kv.second.gemms);
    append_u64(out, "macs", kv.second.macs);
    append_u64(out, "batches", kv.second.batches);
    append_u64(out, "batch_problems", kv.second.batch_problems);
    append_u64(out, "shard_migrations", kv.second.shard_migrations);
    append_f64(out, "seconds", kv.second.seconds, /*comma=*/false);
    out += '}';
  }
  out += "}, \"compile\": {";
  append_u64(out, "planes_packed", compile_planes_packed);
  append_u64(out, "folds", compile_folds);
  append_u64(out, "fusions", compile_fusions);
  append_u64(out, "rebuilds", compile_rebuilds);
  append_u64(out, "activation_bytes", compile_activation_bytes,
             /*comma=*/false);
  out += "}, \"serve\": {";
  append_u64(out, "requests", serve_requests);
  append_u64(out, "batches", serve_batches);
  append_f64(out, "mean_batch", serve_mean_batch());
  append_f64(out, "p50_us", serve_latency_percentile_us(50));
  append_f64(out, "p95_us", serve_latency_percentile_us(95));
  append_f64(out, "p99_us", serve_latency_percentile_us(99));
  append_u64(out, "gemms_grouped", gemms_grouped);
  append_u64(out, "grouped_samples", grouped_samples);
  append_u64(out, "sheds", serve_sheds);
  append_u64(out, "retries", serve_retries);
  append_u64(out, "deadline_misses", serve_deadline_misses);
  append_u64(out, "failed_batches", serve_failed_batches);
  append_u64(out, "breaker_transitions", serve_breaker_transitions);
  out += "\"shadow\": {";
  append_u64(out, "selected", serve_shadow_selected);
  append_u64(out, "runs", serve_shadow_runs);
  append_u64(out, "sheds", serve_shadow_sheds, /*comma=*/false);
  out += "}, \"replicas\": [";
  for (size_t i = 0; i < serve_replicas.size(); ++i) {
    if (i) out += ", ";
    out += srmac::to_json(serve_replicas[i], static_cast<int>(i));
  }
  out += "]}, \"drift\": [";
  for (size_t i = 0; i < drift.size(); ++i) {
    if (i) out += ", ";
    out += srmac::to_json(drift[i]);
  }
  out += "]}";
  return out;
}

}  // namespace srmac
