#include "engine/compute_context.hpp"

#include "engine/registry.hpp"

namespace srmac {

ComputeContext ComputeContext::fp32() {
  ComputeContext c;
  c.backend = BackendRegistry::instance().get("fp32");
  return c;
}

ComputeContext ComputeContext::emulated(const MacConfig& cfg, uint64_t seed) {
  ComputeContext c;
  c.backend = BackendRegistry::instance().get("fused");
  c.policy = QuantPolicy::uniform(cfg);
  c.seed = seed;
  return c;
}

ComputeContext ComputeContext::with_backend(const std::string& backend_name,
                                            const QuantPolicy& policy,
                                            uint64_t seed, int threads) {
  ComputeContext c;
  c.backend = BackendRegistry::instance().get(backend_name);
  c.policy = policy;
  c.seed = seed;
  c.threads = threads;
  return c;
}

ComputeContext ComputeContext::for_layer(const std::string& layer_name) const {
  if (!policy.layer_rules) return *this;
  const auto it = policy.layer_rules->find(layer_name);
  if (it == policy.layer_rules->end()) return *this;
  ComputeContext c = *this;
  for (MacConfig& cfg : c.policy.passes) cfg = it->second.applied_to(cfg);
  return c;
}

}  // namespace srmac
