#pragma once

// Common CLI plumbing for the examples and benches: every binary that
// selects arithmetic accepts the same flags, parsed into an EmuEngine —
//
//   --scenario=SPEC   "fp32" or a MacConfig spec, e.g.
//                     "eager_sr:e5m2/e6m5:r=9:subON" (see docs/API.md)
//   --backend=NAME    registry key: fp32 | fused | reference | batched |
//                     sharded | systolic | ...
//   --hfp8            HFP8 policy (E4M3 forward / E5M2 backward) on top of
//                     the scenario's accumulator and adder
//   --seed=N          base LFSR seed (default kDefaultSeed)
//   --threads=N       thread cap (default 0 = hardware concurrency)
//   --shards=N        worker-shard count for sharded scheduling (default 0
//                     = auto: SRMAC_SHARDS env, then detected NUMA nodes)
//   --serve-batch=N   serving: micro-batch coalescing cap (EmuServer
//                     max_batch; 1 = no coalescing)
//   --serve-wait-us=N serving: linger for stragglers after the first
//                     request of a micro-batch (EmuServer max_wait_us)
//   --serve-clients=N serving: closed-loop client threads the serve
//                     bench/example drives the session with
//   --serve-replicas=N serving: fleet size (ClusterController replicas;
//                     1 = a single EmuServer session, no controller)
//   --serve-deadline-us=N serving: per-request deadline (0 = none)
//   --serve-slo-us=N  serving: p95 SLO target of the fleet load score
//   --serve-compile   serving: serve through an ahead-of-time CompiledModel
//                     (ServeConfig::compile; docs/COMPILER.md) — weight
//                     planes pack once, epilogues fuse, bits unchanged
//   --shadow-scenario=SPEC serving: shadow A/B — re-run a sample of
//                     requests through a second engine built from SPEC
//                     after the primary forward (docs/SERVING.md)
//   --shadow-fraction=F serving: fraction of requests the shadow trace-id
//                     hash selects (default 1.0 once a shadow scenario is
//                     set)
//
// Unknown flags are left alone so callers can parse their own arguments
// from the same argv.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "engine/emu_engine.hpp"
#include "engine/session_spec.hpp"
#include "util/thread_pool.hpp"

namespace srmac {

struct EngineCliArgs {
  std::string scenario = "eager_sr:e5m2/e6m5:r=9:subON";
  std::string backend;  // empty: the scenario decides (fp32 vs fused)
  bool hfp8 = false;
  uint64_t seed = kDefaultSeed;
  int threads = 0;
  int shards = 0;  // 0 = auto (SRMAC_SHARDS env, then topology)
  // Serving knobs (EmuServer / bench_serve / examples):
  int serve_batch = 16;          // micro-batch coalescing cap
  uint64_t serve_wait_us = 200;  // straggler linger per micro-batch
  int serve_clients = 16;        // closed-loop client load-generator threads
  int serve_replicas = 1;        // fleet size (1 = no ClusterController)
  uint64_t serve_deadline_us = 0;  // per-request deadline (0 = none)
  uint64_t serve_slo_us = 20000;   // p95 SLO target of the fleet load score
  bool serve_compile = false;      // serve through a CompiledModel
  // Shadow A/B (ServeConfig::shadow; docs/SERVING.md):
  std::string shadow_scenario;     // empty = shadowing off
  double shadow_fraction = 1.0;    // trace-id-hash sample fraction

  /// The engine flags as a SessionSpec — the shared session description
  /// EmuEngine::Builder, ServeConfig, serve_daemon, and the C API all
  /// accept. Note --hfp8 layers a policy on top and is applied separately
  /// (engine_or_die).
  SessionSpec session() const {
    SessionSpec s;
    s.scenario = scenario;
    s.backend = backend;
    s.seed = seed;
    s.threads = threads;
    s.compile = serve_compile;
    return s;
  }

  /// The shadow session the flags describe (scenario empty = disabled).
  /// Seed/threads/backend follow the primary: drift should measure the
  /// scenario, not an incidental seed difference.
  SessionSpec shadow_session() const {
    SessionSpec s = session();
    s.scenario = shadow_scenario;
    s.compile = false;  // callers opt in via ShadowConfig::session.compile
    return s;
  }
};

inline const char* engine_cli_usage() {
  return "  --scenario=SPEC  'fp32' or adder:mulfmt/accfmt[:r=N][:subON|subOFF]\n"
         "                   (e.g. eager_sr:e5m2/e6m5:r=9:subON)\n"
         "  --backend=NAME   fp32 | fused | reference | batched | sharded |\n"
         "                   systolic | ...\n"
         "  --hfp8           E4M3-forward / E5M2-backward multiplier formats\n"
         "  --seed=N         base LFSR seed\n"
         "  --threads=N      thread cap (0 = hardware concurrency)\n"
         "  --shards=N       worker shards for sharded scheduling\n"
         "                   (0 = auto: SRMAC_SHARDS env, then NUMA topology)\n"
         "  --serve-batch=N  serving micro-batch cap (1 = no coalescing)\n"
         "  --serve-wait-us=N  micro-batch straggler linger in microseconds\n"
         "  --serve-clients=N  closed-loop client threads (serve bench)\n"
         "  --serve-replicas=N serving fleet size (1 = single session)\n"
         "  --serve-deadline-us=N  per-request deadline (0 = none)\n"
         "  --serve-slo-us=N   p95 SLO target of the fleet load score\n"
         "  --serve-compile    serve through an ahead-of-time CompiledModel\n"
         "  --shadow-scenario=SPEC  shadow A/B: second scenario to re-run a\n"
         "                   sample of requests under (empty = off)\n"
         "  --shadow-fraction=F  shadow sample fraction in [0,1] (default 1)\n";
}

/// Scans argv for the engine flags above; everything else is ignored (the
/// caller parses its own flags from the same argv). A --shards value is
/// applied immediately as the process-wide default
/// (ThreadPool::set_default_shards), so the "sharded" backend's dispatches
/// pick it up without further plumbing.
inline EngineCliArgs parse_engine_cli(int argc, char** argv) {
  EngineCliArgs args;
  for (int i = 1; i < argc; ++i) {
    auto val = [&](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      if (std::strncmp(argv[i], flag, n) == 0 && argv[i][n] == '=')
        return argv[i] + n + 1;
      return nullptr;
    };
    if (const char* v = val("--scenario")) args.scenario = v;
    if (const char* v = val("--backend")) args.backend = v;
    if (const char* v = val("--seed")) args.seed = std::strtoull(v, nullptr, 0);
    if (const char* v = val("--threads")) args.threads = std::atoi(v);
    if (const char* v = val("--shards")) args.shards = std::atoi(v);
    if (const char* v = val("--serve-batch")) args.serve_batch = std::atoi(v);
    if (const char* v = val("--serve-wait-us"))
      args.serve_wait_us = std::strtoull(v, nullptr, 0);
    if (const char* v = val("--serve-clients"))
      args.serve_clients = std::atoi(v);
    if (const char* v = val("--serve-replicas"))
      args.serve_replicas = std::atoi(v);
    if (const char* v = val("--serve-deadline-us"))
      args.serve_deadline_us = std::strtoull(v, nullptr, 0);
    if (const char* v = val("--serve-slo-us"))
      args.serve_slo_us = std::strtoull(v, nullptr, 0);
    if (const char* v = val("--shadow-scenario")) args.shadow_scenario = v;
    if (const char* v = val("--shadow-fraction"))
      args.shadow_fraction = std::strtod(v, nullptr);
    if (std::strcmp(argv[i], "--hfp8") == 0) args.hfp8 = true;
    if (std::strcmp(argv[i], "--serve-compile") == 0)
      args.serve_compile = true;
  }
  if (args.shards > 0) ThreadPool::set_default_shards(args.shards);
  return args;
}

/// Builds the engine the parsed flags describe; on a bad scenario or
/// backend name prints the error plus the flag reference and exits — the
/// behavior every CLI binary wants.
inline EmuEngine engine_or_die(const EngineCliArgs& args) {
  try {
    EmuEngine::Builder b;
    b.spec(args.session());
    if (args.hfp8) b.hfp8();
    return b.build();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), engine_cli_usage());
    std::exit(2);
  }
}

}  // namespace srmac
