#include "engine/emu_engine.hpp"

#include <cstdio>
#include <stdexcept>

namespace srmac {

EmuEngine::Builder& EmuEngine::Builder::scenario(const std::string& spec) {
  scenario_ = spec;
  return *this;
}

EmuEngine::Builder& EmuEngine::Builder::backend(const std::string& name) {
  backend_ = name;
  return *this;
}

EmuEngine::Builder& EmuEngine::Builder::spec(const SessionSpec& s) {
  scenario_ = s.scenario;
  backend_ = s.backend;
  seed_ = s.seed;
  threads_ = s.threads;
  return *this;
}

EmuEngine::Builder& EmuEngine::Builder::policy(const QuantPolicy& p) {
  policy_ = p;
  return *this;
}

EmuEngine::Builder& EmuEngine::Builder::hfp8(const FpFormat& fwd_fmt,
                                             const FpFormat& bwd_fmt) {
  hfp8_ = true;
  hfp8_fwd_ = fwd_fmt;
  hfp8_bwd_ = bwd_fmt;
  return *this;
}

EmuEngine::Builder& EmuEngine::Builder::seed(uint64_t s) {
  seed_ = s;
  return *this;
}

EmuEngine::Builder& EmuEngine::Builder::threads(int t) {
  threads_ = t;
  return *this;
}

EmuEngine EmuEngine::Builder::build() const {
  std::string backend_name = backend_;
  QuantPolicy policy;
  if (policy_) {
    policy = *policy_;
    if (backend_name.empty()) backend_name = "fused";
  } else if (scenario_ == "fp32") {
    policy = QuantPolicy::uniform(MacConfig{});
    if (backend_name.empty()) backend_name = "fp32";
  } else {
    std::string error;
    const auto cfg = MacConfig::parse(scenario_, &error);
    if (!cfg) throw std::invalid_argument("bad scenario: " + error);
    policy = QuantPolicy::uniform(*cfg);
    if (backend_name.empty()) backend_name = "fused";
  }
  if (hfp8_) {
    const MacConfig base = policy.mac_for(GemmPass::kForward);
    const QuantPolicy h = QuantPolicy::hfp8(base, hfp8_fwd_, hfp8_bwd_);
    policy.passes[0] = h.passes[0];
    policy.passes[1] = h.passes[1];
    policy.passes[2] = h.passes[2];
  }
  const MatmulBackend* backend = BackendRegistry::instance().get(backend_name);
  return EmuEngine(backend, std::move(policy), scenario_, seed_, threads_);
}

EmuEngine::EmuEngine(const MatmulBackend* backend, QuantPolicy policy,
                     std::string scenario, uint64_t seed, int threads)
    : backend_(backend),
      policy_(std::move(policy)),
      scenario_(std::move(scenario)),
      seed_(seed),
      threads_(threads),
      telemetry_(std::make_unique<Telemetry>()) {}

std::vector<std::string> EmuEngine::backends() {
  return BackendRegistry::instance().names();
}

ComputeContext EmuEngine::context() const {
  ComputeContext c;
  c.backend = backend_;
  c.policy = policy_;
  c.seed = seed_;
  c.threads = threads_;
  c.telemetry = telemetry_.get();
  return c;
}

std::string EmuEngine::describe() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "backend=%s scenario=%s seed=0x%llx threads=%s",
                backend_->name().c_str(),
                backend_->bit_accurate()
                    ? policy_.mac_for(GemmPass::kForward).to_string().c_str()
                    : "fp32",
                static_cast<unsigned long long>(seed_),
                threads_ == 0 ? "hw" : std::to_string(threads_).c_str());
  return buf;
}

}  // namespace srmac
