#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mac/mac_config.hpp"

namespace srmac {

/// Dimensions and operand pointers of one C[MxN] = A[MxK] * B[KxN] (+C)
/// dispatch, row-major with leading dimensions — the argument bundle every
/// backend consumes, so adding a backend does not mean growing a dozen
/// parameter lists.
struct GemmArgs {
  int M = 0, N = 0, K = 0;
  const float* A = nullptr;
  int lda = 0;
  const float* B = nullptr;
  int ldb = 0;
  float* C = nullptr;
  int ldc = 0;
  bool accumulate = false;
  uint64_t seed = kDefaultSeed;
  int threads = 0;  ///< 0 = hardware concurrency
  /// Seed-derivation periods for grouped same-shape execution (see the
  /// gemm_mac_bits_packed contract in mac/gemm.hpp): a non-zero period
  /// folds that output coordinate modulo the period before the per-element
  /// seed hash, so independent problems concatenated into one wide GEMM
  /// keep their standalone seeds. 0 = identity (the default, unchanged
  /// behavior).
  int seed_row_period = 0;
  int seed_col_period = 0;
};

/// GemmArgs with operands already quantized to cfg.mul_fmt bit patterns —
/// the cached weight-plane path of the nn layers.
struct GemmBitsArgs {
  int M = 0, N = 0, K = 0;
  const uint32_t* Aq = nullptr;
  int lda = 0;
  const uint32_t* Bq = nullptr;
  int ldb = 0;
  float* C = nullptr;
  int ldc = 0;
  bool accumulate = false;
  uint64_t seed = kDefaultSeed;
  int threads = 0;
  /// Seed-derivation periods; same contract as GemmArgs.
  int seed_row_period = 0;
  int seed_col_period = 0;
};

/// One element of a batched GEMM submission: the problem plus the MAC
/// configuration it runs under. Items of one batch may differ in shape,
/// seed, and configuration (e.g. a layer's weight-gradient and
/// data-gradient GEMMs run different QuantPolicy passes), and every item
/// produces exactly the bits a sequential gemm(cfg, args) dispatch would —
/// per-element seeds make batched execution order-independent.
///
/// `Aq` / `Bq`, when non-null, carry that operand already quantized to the
/// (normalized) cfg's multiplier format — the layers' cached weight planes
/// — and take precedence over the float pointer, which may then be null.
/// Valid on every backend: supports_prequantized() implementations consume
/// the bits directly, the rest receive the plane decoded back to floats by
/// the dispatch (lossless round trip), so results match the float
/// submission bit for bit either way.
struct GemmBatchItem {
  MacConfig cfg;
  GemmArgs args;
  const uint32_t* Aq = nullptr;  ///< pre-quantized A plane (lda from args)
  const uint32_t* Bq = nullptr;  ///< pre-quantized B plane (ldb from args)
};

/// Abstract compute backend: how a GEMM physically executes. Registered in
/// BackendRegistry under a string key, selected by name from examples,
/// benches, and tests, and carried (non-owning) by ComputeContext. All
/// implementations are stateless with respect to a call (const methods,
/// shared across threads); per-element seeds keep results independent of
/// thread count. Future backends (sharded/NUMA, remote) drop in by
/// registering a new name — no call site changes.
class MatmulBackend {
 public:
  virtual ~MatmulBackend() = default;

  /// Registry key, e.g. "fused".
  virtual std::string name() const = 0;

  /// Whether this backend quantizes operands into cfg.mul_fmt (the MAC
  /// emulation paths) or consumes floats untouched (fp32). Drives the
  /// layers' weight-plane caching decision.
  virtual bool bit_accurate() const = 0;

  /// Whether gemm_bits() is implemented natively. Backends without native
  /// support still accept pre-quantized operands through the engine's
  /// dequantize-and-requantize fallback (lossless: RN of a representable
  /// value is exact), they just forgo the requantization saving.
  virtual bool supports_prequantized() const { return false; }

  /// Whether this backend honors the seed_row_period / seed_col_period
  /// fields of GemmArgs / GemmBitsArgs — the grouped same-shape execution
  /// contract (docs/SERVING.md): several independent problems concatenated
  /// into one wide GEMM reproduce the per-problem seeds their standalone
  /// dispatches would have used, so callers may merge same-shape work into
  /// one dispatch without changing a single output bit. Backends that seed
  /// by a scheme other than the per-element (i, j) hash (e.g. the systolic
  /// model's per-PE seeding) must return false so grouping callers fall
  /// back to per-problem dispatch.
  virtual bool supports_grouped() const { return false; }

  /// Whether gemm_batch() does better than the default sequential loop.
  /// Callers holding several independent GEMMs (the layers' backward pair,
  /// a multi-request server) should batch when this is true; batching on
  /// other backends is allowed and bit-identical, just not faster.
  virtual bool supports_batch() const { return false; }

  virtual void gemm(const MacConfig& cfg, const GemmArgs& args) const = 0;

  /// Pre-quantized-operand GEMM; only called when supports_prequantized().
  virtual void gemm_bits(const MacConfig& cfg, const GemmBitsArgs& args) const;

  /// Executes `count` independent GEMMs. The default implementation loops
  /// gemm(); the "batched" backend shards whole problems across the thread
  /// pool (work-stealing across problems, not within one) and packs each
  /// unique B plane once; the "sharded" backend routes whole problems to
  /// topology-aware worker shards with shard-local plane caches. Results
  /// are bit-identical to the sequential loop for every implementation.
  virtual void gemm_batch(const GemmBatchItem* items, size_t count) const;
};

/// Optional mix-in for backends that schedule across worker shards (the
/// "sharded" backend). Counters are cumulative over the backend instance's
/// lifetime; the telemetry dispatch in MatmulBatch::flush snapshots them
/// around a gemm_batch call and records the delta. With several engines
/// sharing one registry instance concurrently the deltas may interleave —
/// the counters are scheduling diagnostics, not accounting.
class ShardStatsSource {
 public:
  virtual ~ShardStatsSource() = default;

  struct Stats {
    uint64_t migrations = 0;  ///< problems executed off their routed shard
    std::vector<uint64_t> planes_packed;  ///< B planes packed, per shard
    /// Bytes of float B planes the backend quantized itself (a shared
    /// plane quantizes once per shard that packs it) — the telemetry
    /// dispatch records these instead of its once-per-batch dedup
    /// estimate, so bytes_quantized agrees with planes_packed_per_shard.
    uint64_t plane_bytes_quantized = 0;
  };
  virtual Stats shard_stats() const = 0;
};

}  // namespace srmac
