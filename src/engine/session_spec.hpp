#pragma once

#include <cstdint>
#include <string>

#include "mac/mac_config.hpp"

namespace srmac {

class EmuEngine;

/// The shared description of one emulation session: which scenario it runs,
/// on which backend, with which seed/thread defaults, and whether it serves
/// through the ahead-of-time compiler. Before this struct existed the same
/// four fields were plumbed separately through EmuEngine::Builder, the CLI
/// helper, serve_daemon's flag parsing, and the C API's session builder —
/// and drifted apart; now all of them carry a SessionSpec, and a shadow A/B
/// session (ServeConfig::shadow) is simply a second one.
struct SessionSpec {
  /// Scenario string in the shared grammar (MacConfig::to_string), or
  /// "fp32" for the float baseline.
  std::string scenario = "eager_sr:e5m2/e6m5:r=9:subON";

  /// Backend registry key ("fused", "fp32", "reference", "systolic", ...).
  /// Empty: the scenario decides (fp32 -> "fp32", anything else -> "fused").
  std::string backend;

  uint64_t seed = kDefaultSeed;  ///< base seed of the per-element LFSRs
  int threads = 0;               ///< GEMM thread cap (0 = hardware)

  /// Serve through an ahead-of-time CompiledModel (consumed by the serving
  /// layer and the daemon; EmuEngine itself is compilation-agnostic).
  bool compile = false;

  /// Builds the engine this spec describes (EmuEngine::Builder::spec).
  /// Throws std::invalid_argument on an unparsable scenario or unknown
  /// backend name.
  EmuEngine build_engine() const;

  friend bool operator==(const SessionSpec& a, const SessionSpec& b) {
    return a.scenario == b.scenario && a.backend == b.backend &&
           a.seed == b.seed && a.threads == b.threads &&
           a.compile == b.compile;
  }
};

}  // namespace srmac
