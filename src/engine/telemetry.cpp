#include "engine/telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "hwcost/adder_designs.hpp"

namespace srmac {

void Telemetry::record_gemm(const std::string& backend, int M, int N, int K,
                            double seconds) {
  const uint64_t macs = static_cast<uint64_t>(M) * static_cast<uint64_t>(N) *
                        static_cast<uint64_t>(K);
  std::lock_guard<std::mutex> lock(mu_);
  totals_.gemms += 1;
  totals_.macs += macs;
  totals_.seconds += seconds;
  BackendStats& b = totals_.per_backend[backend];
  b.gemms += 1;
  b.macs += macs;
  b.seconds += seconds;
}

void Telemetry::record_batch(const std::string& backend, uint64_t problems,
                             uint64_t macs, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.gemms += problems;
  totals_.macs += macs;
  totals_.seconds += seconds;
  totals_.batches += 1;
  totals_.batch_problems += problems;
  BackendStats& b = totals_.per_backend[backend];
  b.gemms += problems;
  b.macs += macs;
  b.seconds += seconds;
  b.batches += 1;
  b.batch_problems += problems;
}

void Telemetry::record_sharded(
    const std::string& backend, uint64_t migrations,
    const std::vector<uint64_t>& planes_packed_per_shard,
    uint64_t plane_bytes_quantized) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.shard_migrations += migrations;
  totals_.bytes_quantized += plane_bytes_quantized;
  if (totals_.planes_packed_per_shard.size() < planes_packed_per_shard.size())
    totals_.planes_packed_per_shard.resize(planes_packed_per_shard.size());
  for (size_t s = 0; s < planes_packed_per_shard.size(); ++s)
    totals_.planes_packed_per_shard[s] += planes_packed_per_shard[s];
  totals_.per_backend[backend].shard_migrations += migrations;
}

void Telemetry::record_grouped_gemm(uint64_t samples) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.gemms_grouped += 1;
  totals_.grouped_samples += samples;
}

void Telemetry::record_quantize(uint64_t values, const FpFormat& fmt) {
  const uint64_t bytes = values * static_cast<uint64_t>((fmt.width() + 7) / 8);
  std::lock_guard<std::mutex> lock(mu_);
  totals_.bytes_quantized += bytes;
}

void Telemetry::record_compile(uint64_t planes_packed, uint64_t folds,
                               uint64_t fusions) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.compile_planes_packed += planes_packed;
  totals_.compile_folds += folds;
  totals_.compile_fusions += fusions;
}

void Telemetry::record_compile_rebuild(uint64_t planes) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.compile_rebuilds += planes;
  totals_.compile_planes_packed += planes;
}

void Telemetry::record_compiled_forward(uint64_t gemms, uint64_t macs,
                                        uint64_t activation_bytes,
                                        double seconds) {
  const uint64_t bytes = activation_bytes;
  std::lock_guard<std::mutex> lock(mu_);
  totals_.gemms += gemms;
  totals_.macs += macs;
  totals_.seconds += seconds;
  totals_.compile_activation_bytes += bytes;
  BackendStats& b = totals_.per_backend["compiled"];
  b.gemms += gemms;
  b.macs += macs;
  b.seconds += seconds;
}

namespace {
ServeReplicaStats& replica_row(TelemetrySnapshot& t, int replica) {
  const size_t idx = replica < 0 ? 0 : static_cast<size_t>(replica);
  if (t.serve_replicas.size() <= idx) t.serve_replicas.resize(idx + 1);
  return t.serve_replicas[idx];
}
}  // namespace

void Telemetry::record_serve_batch(size_t batch_size,
                                   const uint64_t* latency_us, size_t n,
                                   int replica, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.serve_batches += 1;
  totals_.serve_requests += n;
  ServeReplicaStats& row = replica_row(totals_, replica);
  row.batches += 1;
  row.requests += n;
  if (!ok) {
    totals_.serve_failed_batches += 1;
    row.failures += 1;
  }
  if (totals_.serve_batch_hist.size() <= batch_size)
    totals_.serve_batch_hist.resize(batch_size + 1);
  totals_.serve_batch_hist[batch_size] += 1;
  // Bounded reservoir: exact below the cap; past it, halve the retained
  // series and double the sampling stride (deterministic decimation), so
  // a long-lived session keeps fixed memory and a representative spread.
  for (size_t i = 0; i < n; ++i) {
    if ((serve_lat_seen_++ % serve_lat_stride_) != 0) continue;
    std::vector<uint64_t>& v = totals_.serve_latency_us;
    if (v.size() >= kServeLatencySampleCap) {
      size_t w = 0;
      for (size_t r = 0; r < v.size(); r += 2) v[w++] = v[r];
      v.resize(w);
      serve_lat_stride_ *= 2;
    }
    v.push_back(latency_us[i]);
  }
}

void Telemetry::record_serve_deadline_miss(int replica, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.serve_deadline_misses += n;
  replica_row(totals_, replica).deadline_misses += n;
}

void Telemetry::record_serve_shed(int replica) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.serve_sheds += 1;
  if (replica >= 0) replica_row(totals_, replica).sheds += 1;
}

void Telemetry::record_serve_retry(int replica) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.serve_retries += 1;
  replica_row(totals_, replica).retries += 1;
}

void Telemetry::record_breaker_transition(int replica, int to_state) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.serve_breaker_transitions += 1;
  ServeReplicaStats& row = replica_row(totals_, replica);
  // 0 closed / 1 open / 2 half-open (CircuitBreaker::State's numbering).
  if (to_state == 1) row.breaker_opens += 1;
  else if (to_state == 2) row.breaker_half_opens += 1;
  else row.breaker_closes += 1;
}

void Telemetry::record_serve_shadow_selected(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.serve_shadow_selected += n;
}

void Telemetry::record_serve_shadow_run(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.serve_shadow_runs += n;
}

void Telemetry::record_serve_shadow_shed(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.serve_shadow_sheds += n;
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = totals_;
  }
  // The drift tracker has its own lock; merge outside mu_ (no nesting).
  out.drift = drift_.snapshot();
  return out;
}

void Telemetry::reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    totals_ = TelemetrySnapshot{};
    serve_lat_stride_ = 1;
    serve_lat_seen_ = 0;
  }
  drift_.reset();
}

double TelemetrySnapshot::serve_latency_percentile_us(double q) const {
  if (serve_latency_us.empty()) return 0.0;
  std::vector<uint64_t> sorted = serve_latency_us;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest sample with at least q% of the mass at or
  // below it, so p50 of {1,2} is 1 and p100 is always the maximum.
  const double clamped = std::min(100.0, std::max(0.0, q));
  size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  return static_cast<double>(sorted[rank]);
}

double TelemetrySnapshot::serve_mean_batch() const {
  return serve_batches
             ? static_cast<double>(serve_requests) /
                   static_cast<double>(serve_batches)
             : 0.0;
}

double TelemetrySnapshot::projected_mac_energy_uj(const MacConfig& cfg) const {
  const hw::AsicReport rep = hw::asic_mac_cost(cfg.normalized());
  // energy_nw_mhz is fJ per MAC cycle; 1e-9 converts fJ to uJ.
  return static_cast<double>(macs) * rep.energy_nw_mhz * 1e-9;
}

}  // namespace srmac
