#include "engine/telemetry.hpp"

#include "hwcost/adder_designs.hpp"

namespace srmac {

void Telemetry::record_gemm(const std::string& backend, int M, int N, int K,
                            double seconds) {
  const uint64_t macs = static_cast<uint64_t>(M) * static_cast<uint64_t>(N) *
                        static_cast<uint64_t>(K);
  std::lock_guard<std::mutex> lock(mu_);
  totals_.gemms += 1;
  totals_.macs += macs;
  totals_.seconds += seconds;
  BackendStats& b = totals_.per_backend[backend];
  b.gemms += 1;
  b.macs += macs;
  b.seconds += seconds;
}

void Telemetry::record_batch(const std::string& backend, uint64_t problems,
                             uint64_t macs, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.gemms += problems;
  totals_.macs += macs;
  totals_.seconds += seconds;
  totals_.batches += 1;
  totals_.batch_problems += problems;
  BackendStats& b = totals_.per_backend[backend];
  b.gemms += problems;
  b.macs += macs;
  b.seconds += seconds;
  b.batches += 1;
  b.batch_problems += problems;
}

void Telemetry::record_sharded(
    const std::string& backend, uint64_t migrations,
    const std::vector<uint64_t>& planes_packed_per_shard,
    uint64_t plane_bytes_quantized) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.shard_migrations += migrations;
  totals_.bytes_quantized += plane_bytes_quantized;
  if (totals_.planes_packed_per_shard.size() < planes_packed_per_shard.size())
    totals_.planes_packed_per_shard.resize(planes_packed_per_shard.size());
  for (size_t s = 0; s < planes_packed_per_shard.size(); ++s)
    totals_.planes_packed_per_shard[s] += planes_packed_per_shard[s];
  totals_.per_backend[backend].shard_migrations += migrations;
}

void Telemetry::record_quantize(uint64_t values, const FpFormat& fmt) {
  const uint64_t bytes = values * static_cast<uint64_t>((fmt.width() + 7) / 8);
  std::lock_guard<std::mutex> lock(mu_);
  totals_.bytes_quantized += bytes;
}

TelemetrySnapshot Telemetry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  totals_ = TelemetrySnapshot{};
}

double TelemetrySnapshot::projected_mac_energy_uj(const MacConfig& cfg) const {
  const hw::AsicReport rep = hw::asic_mac_cost(cfg.normalized());
  // energy_nw_mhz is fJ per MAC cycle; 1e-9 converts fJ to uJ.
  return static_cast<double>(macs) * rep.energy_nw_mhz * 1e-9;
}

}  // namespace srmac
