#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/compute_context.hpp"
#include "engine/quant_policy.hpp"
#include "engine/registry.hpp"
#include "engine/session_spec.hpp"
#include "engine/telemetry.hpp"

namespace srmac {

/// Facade over the emulation stack: one object owning the backend choice,
/// the quantization policy, the telemetry sink, and the execution defaults
/// (seed, thread cap — the persistent thread pool itself is process-wide;
/// the engine carries the cap its contexts dispatch with). Examples,
/// benches, and tests construct one engine and hand its context() to the
/// layers/trainer; everything downstream is reached through that context.
///
/// Built with a builder that accepts the shared scenario-string grammar
/// (MacConfig::to_string): `"eager_sr:e5m2/e6m5:r=9:subON"` selects the
/// paper's reference MAC on the default "fused" backend, `"fp32"` the
/// float baseline. The engine must outlive every context it hands out
/// (contexts point at its telemetry sink).
class EmuEngine {
 public:
  class Builder {
   public:
    /// Parses a scenario string: "fp32", or a MacConfig spec (see
    /// MacConfig::parse) run under a uniform policy. Later policy()/hfp8()
    /// calls replace the parsed policy; backend() overrides the backend.
    Builder& scenario(const std::string& spec);

    /// Registry key ("fp32", "fused", "reference", "systolic", ...).
    Builder& backend(const std::string& name);

    /// Applies a whole SessionSpec at once: scenario, backend, seed, and
    /// threads (spec.compile is a serving-layer concern the engine does not
    /// consume). The shared entry point of the CLI helper, serve_daemon,
    /// the C API, and EmuServer's shadow sessions.
    Builder& spec(const SessionSpec& s);

    Builder& policy(const QuantPolicy& p);

    /// HFP8 [7] on top of the current forward configuration.
    Builder& hfp8(const FpFormat& fwd_fmt = kFp8E4M3,
                  const FpFormat& bwd_fmt = kFp8E5M2);

    Builder& seed(uint64_t s);
    Builder& threads(int t);

    /// Resolves the backend through the registry and builds the engine.
    /// Throws std::invalid_argument on an unparsable scenario or unknown
    /// backend name.
    EmuEngine build() const;

   private:
    std::string scenario_ = "eager_sr:e5m2/e6m5:r=9:subON";
    std::string backend_;  // empty: scenario decides (fp32 vs fused)
    std::optional<QuantPolicy> policy_;
    bool hfp8_ = false;
    FpFormat hfp8_fwd_ = kFp8E4M3, hfp8_bwd_ = kFp8E5M2;
    uint64_t seed_ = kDefaultSeed;
    int threads_ = 0;
  };

  /// Registered backend names (the registry the engine fronts).
  static std::vector<std::string> backends();

  /// A context dispatching on this engine's backend/policy and recording
  /// into its telemetry sink.
  ComputeContext context() const;

  const MatmulBackend& backend() const { return *backend_; }
  const QuantPolicy& policy() const { return policy_; }
  uint64_t seed() const { return seed_; }
  int threads() const { return threads_; }

  /// The scenario string the engine was built from ("fp32" or a MacConfig
  /// spec) — the key drift telemetry identifies scenario pairs by.
  const std::string& scenario() const { return scenario_; }

  Telemetry& telemetry() { return *telemetry_; }
  const Telemetry& telemetry() const { return *telemetry_; }

  /// One-line human summary, e.g.
  /// "backend=fused scenario=eager_sr:e5m2/e6m5:r=9:subON seed=0x5eed5eed".
  std::string describe() const;

 private:
  friend class Builder;
  EmuEngine(const MatmulBackend* backend, QuantPolicy policy,
            std::string scenario, uint64_t seed, int threads);

  const MatmulBackend* backend_;
  QuantPolicy policy_;
  std::string scenario_;
  uint64_t seed_;
  int threads_;
  std::unique_ptr<Telemetry> telemetry_;  // unique_ptr: keeps the engine movable
};

}  // namespace srmac
