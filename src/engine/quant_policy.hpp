#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "mac/mac_config.hpp"

namespace srmac {

/// Which of the training GEMMs a dispatch belongs to. The trainer marks the
/// top-level backward call (kBackwardData); the layers mark their
/// weight-gradient GEMMs (kBackwardWeight). Everything else is kForward.
enum class GemmPass { kForward = 0, kBackwardData = 1, kBackwardWeight = 2 };

constexpr const char* to_string(GemmPass p) {
  switch (p) {
    case GemmPass::kForward: return "fwd";
    case GemmPass::kBackwardData: return "bwd-grad";
    case GemmPass::kBackwardWeight: return "bwd-weight";
  }
  return "?";
}

/// Per-layer override applied on top of the per-pass configurations when a
/// layer named `Layer::name()` executes. Unset fields keep the pass value.
struct LayerQuantRule {
  std::optional<FpFormat> mul_fmt;
  std::optional<FpFormat> acc_fmt;
  std::optional<AdderKind> adder;
  std::optional<int> random_bits;
  std::optional<bool> subnormals;

  MacConfig applied_to(MacConfig cfg) const {
    if (mul_fmt) cfg.mul_fmt = *mul_fmt;
    if (acc_fmt) cfg.acc_fmt = *acc_fmt;
    if (adder) cfg.adder = *adder;
    if (random_bits) cfg.random_bits = *random_bits;
    if (subnormals) cfg.subnormals = *subnormals;
    return cfg;
  }
};

/// What gets quantized how, as data: one full MacConfig per GEMM pass
/// (multiplier/accumulator format, RN/SR adder, random bits, subnormals),
/// optional per-layer overrides, and the seed-derivation constant. This
/// generalizes the old ComputeContext flag soup — HFP8's "E4M3 forward,
/// E5M2 backward" special case is just one policy instance (hfp8()), and
/// mixed-precision schedules the paper doesn't study (wider accumulators
/// for weight gradients, RN forward + SR backward, per-layer formats) are
/// policies too, with no new plumbing.
struct QuantPolicy {
  /// Indexed by GemmPass. Meaningless under the fp32 backend.
  MacConfig passes[3];

  /// Overrides keyed by Layer::name() (e.g. "Linear"), applied by
  /// ComputeContext::for_layer as the Sequential walks the graph. Shared,
  /// immutable, and usually null — contexts are copied on every fork.
  std::shared_ptr<const std::map<std::string, LayerQuantRule>> layer_rules;

  /// Seed-derivation multiplier used by ComputeContext::fork: the
  /// decorrelation schedule is policy data, not hard-wired arithmetic.
  uint64_t fork_mult = 0x9E3779B97F4A7C15ull;

  /// Every pass runs the same MacConfig (the paper's main configurations).
  static QuantPolicy uniform(const MacConfig& cfg) {
    QuantPolicy p;
    p.passes[0] = p.passes[1] = p.passes[2] = cfg;
    return p;
  }

  /// The HFP8 scheme [7]: forward GEMMs quantize multiplier inputs in
  /// `fwd_fmt` (E4M3: more precision for activations/weights), both
  /// backward GEMMs in `bwd_fmt` (E5M2: more range for gradients); the
  /// accumulator and adder come from `base` unchanged.
  static QuantPolicy hfp8(const MacConfig& base,
                          const FpFormat& fwd_fmt = kFp8E4M3,
                          const FpFormat& bwd_fmt = kFp8E5M2) {
    QuantPolicy p = uniform(base);
    p.passes[static_cast<int>(GemmPass::kForward)].mul_fmt = fwd_fmt;
    p.passes[static_cast<int>(GemmPass::kBackwardData)].mul_fmt = bwd_fmt;
    p.passes[static_cast<int>(GemmPass::kBackwardWeight)].mul_fmt = bwd_fmt;
    return p;
  }

  const MacConfig& mac_for(GemmPass pass) const {
    return passes[static_cast<int>(pass)];
  }

  /// Copy with `rule` registered for layers named `layer`.
  QuantPolicy with_layer_rule(const std::string& layer,
                              const LayerQuantRule& rule) const {
    QuantPolicy p = *this;
    auto rules = layer_rules
                     ? std::map<std::string, LayerQuantRule>(*layer_rules)
                     : std::map<std::string, LayerQuantRule>();
    rules[layer] = rule;
    p.layer_rules = std::make_shared<const std::map<std::string, LayerQuantRule>>(
        std::move(rules));
    return p;
  }
};

}  // namespace srmac
