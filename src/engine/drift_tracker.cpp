#include "engine/drift_tracker.hpp"

#include <algorithm>
#include <cmath>

namespace srmac {

const std::vector<double>& DriftTracker::default_epsilons() {
  static const std::vector<double> eps = {1e-6, 1e-3, 1e-2};
  return eps;
}

double DriftSeries::maxabs_percentile(double q) const {
  if (maxabs_samples.empty()) return 0.0;
  std::vector<double> sorted = maxabs_samples;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank, matching TelemetrySnapshot::serve_latency_percentile_us.
  const double clamped = std::min(100.0, std::max(0.0, q));
  size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  return sorted[rank];
}

void DriftTracker::SeriesState::record(const std::vector<double>& eps,
                                       const float* a, const float* b,
                                       size_t n) {
  if (s.mismatches.size() < eps.size()) s.mismatches.resize(eps.size());
  double sample_max = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = std::fabs(static_cast<double>(a[i]) -
                               static_cast<double>(b[i]));
    sample_max = std::max(sample_max, d);
    s.sum_abs += d;
    for (size_t e = 0; e < eps.size(); ++e)
      if (d > eps[e]) ++s.mismatches[e];
  }
  s.samples += 1;
  s.elems += n;
  s.max_abs = std::max(s.max_abs, sample_max);
  // Bounded reservoir with deterministic stride-doubling decimation (the
  // serve-latency scheme): exact below the cap, representative past it.
  if ((seen++ % stride) != 0) return;
  std::vector<double>& v = s.maxabs_samples;
  if (v.size() >= kMaxAbsSampleCap) {
    size_t w = 0;
    for (size_t r = 0; r < v.size(); r += 2) v[w++] = v[r];
    v.resize(w);
    stride *= 2;
  }
  v.push_back(sample_max);
}

DriftTracker::PairState& DriftTracker::pair_locked(
    const std::string& primary, const std::string& shadow,
    const std::vector<double>& epsilons) {
  PairState& p = pairs_[{primary, shadow}];
  if (p.epsilons.empty())
    p.epsilons = epsilons.empty() ? default_epsilons() : epsilons;
  return p;
}

void DriftTracker::record_final(const std::string& primary,
                                const std::string& shadow,
                                const std::vector<double>& epsilons,
                                const float* a, const float* b, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  PairState& p = pair_locked(primary, shadow, epsilons);
  p.final_output.record(p.epsilons, a, b, n);
}

void DriftTracker::record_layer(const std::string& primary,
                                const std::string& shadow,
                                const std::vector<double>& epsilons,
                                size_t index, const std::string& layer,
                                const float* a, const float* b, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  PairState& p = pair_locked(primary, shadow, epsilons);
  LayerState& l = p.layers[index];
  if (l.name.empty()) l.name = layer;
  l.series.record(p.epsilons, a, b, n);
}

std::vector<DriftPairSnapshot> DriftTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DriftPairSnapshot> out;
  out.reserve(pairs_.size());
  for (const auto& kv : pairs_) {
    DriftPairSnapshot snap;
    snap.primary = kv.first.first;
    snap.shadow = kv.first.second;
    snap.epsilons = kv.second.epsilons;
    snap.final_output = kv.second.final_output.s;
    for (const auto& lk : kv.second.layers) {
      DriftLayerSnapshot row;
      row.index = lk.first;
      row.layer = lk.second.name;
      row.series = lk.second.series.s;
      snap.layers.push_back(std::move(row));
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void DriftTracker::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pairs_.clear();
}

}  // namespace srmac
