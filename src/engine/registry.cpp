#include "engine/registry.hpp"

#include <stdexcept>

#include "fpemu/softfloat.hpp"
#include "mac/gemm.hpp"
#include "mac/systolic.hpp"

namespace srmac {

void MatmulBackend::gemm_bits(const MacConfig& cfg,
                              const GemmBitsArgs& args) const {
  (void)cfg;
  (void)args;
  throw std::logic_error("backend \"" + name() +
                         "\" does not implement gemm_bits; the engine must "
                         "route through the float fallback");
}

namespace {

/// FP32 baseline: floats untouched, gemm_ref. The MacConfig is ignored.
class Fp32Backend final : public MatmulBackend {
 public:
  std::string name() const override { return "fp32"; }
  bool bit_accurate() const override { return false; }
  void gemm(const MacConfig&, const GemmArgs& a) const override {
    gemm_ref(a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc, a.accumulate,
             a.threads);
  }
};

/// The fused emulation engine (docs/PERF.md): blocked GEMM, decoded adder
/// cores, product table, AVX-512 group chain, persistent thread pool.
class FusedBackend final : public MatmulBackend {
 public:
  std::string name() const override { return "fused"; }
  bool bit_accurate() const override { return true; }
  bool supports_prequantized() const override { return true; }
  void gemm(const MacConfig& cfg, const GemmArgs& a) const override {
    gemm_mac(cfg, a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc,
             a.accumulate, a.seed, a.threads);
  }
  void gemm_bits(const MacConfig& cfg, const GemmBitsArgs& a) const override {
    gemm_mac_bits(cfg, a.M, a.N, a.K, a.Aq, a.lda, a.Bq, a.ldb, a.C, a.ldc,
                  a.accumulate, a.seed, a.threads);
  }
};

/// The seed implementation (one MacUnit per output element) — the golden
/// baseline the fused engine is verified against, now selectable by name.
class ReferenceBackend final : public MatmulBackend {
 public:
  std::string name() const override { return "reference"; }
  bool bit_accurate() const override { return true; }
  void gemm(const MacConfig& cfg, const GemmArgs& a) const override {
    gemm_mac_reference(cfg, a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc,
                       a.accumulate, a.seed, a.threads);
  }
};

/// The functional systolic-array simulator: a rows x cols grid of SR-MAC
/// PEs with per-PE seeds (decorrelated from the fused/reference per-element
/// seeding — this backend models the accelerator, it does not reproduce the
/// software engine's bits) plus the dataflow's cycle model.
class SystolicBackend final : public MatmulBackend {
 public:
  SystolicBackend(int rows, int cols) : rows_(rows), cols_(cols) {}
  std::string name() const override { return "systolic"; }
  bool bit_accurate() const override { return true; }
  void gemm(const MacConfig& cfg, const GemmArgs& a) const override {
    SystolicArray array(cfg, rows_, cols_, a.seed);
    array.gemm(a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc,
               a.accumulate, a.threads);
  }

 private:
  int rows_, cols_;
};

}  // namespace

BackendRegistry::BackendRegistry() {
  factories_["fp32"] = [] { return std::make_shared<Fp32Backend>(); };
  factories_["fused"] = [] { return std::make_shared<FusedBackend>(); };
  factories_["reference"] = [] { return std::make_shared<ReferenceBackend>(); };
  factories_["systolic"] = [] { return std::make_shared<SystolicBackend>(16, 16); };
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(const std::string& name,
                                       Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[name] = std::move(factory);
}

std::shared_ptr<MatmulBackend> BackendRegistry::create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown compute backend \"" + name +
                                "\" (registered: " + known + ")");
  }
  return factory();
}

const MatmulBackend* BackendRegistry::get(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = shared_.find(name);
    if (it != shared_.end()) return it->second.get();
  }
  std::shared_ptr<MatmulBackend> instance = create(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = shared_.emplace(name, std::move(instance));
  return it->second.get();
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

bool BackendRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) != 0;
}

}  // namespace srmac
