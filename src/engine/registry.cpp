#include "engine/registry.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "mac/gemm.hpp"
#include "mac/systolic.hpp"
#include "util/thread_pool.hpp"

namespace srmac {

void MatmulBackend::gemm_bits(const MacConfig& cfg,
                              const GemmBitsArgs& args) const {
  (void)cfg;
  (void)args;
  throw std::logic_error("backend \"" + name() +
                         "\" does not implement gemm_bits; the engine must "
                         "route through the float fallback");
}

void MatmulBackend::gemm_batch(const GemmBatchItem* items,
                               size_t count) const {
  for (size_t i = 0; i < count; ++i) {
    const GemmBatchItem& it = items[i];
    const GemmArgs& a = it.args;
    if (!it.Aq && !it.Bq) {
      gemm(it.cfg, a);
      continue;
    }
    const MacConfig c = it.cfg.normalized();
    if (!supports_prequantized()) {
      // Decode the cached plane(s) back to floats (lossless round trip:
      // requantizing a representable value returns the same bits).
      GemmArgs fa = a;
      std::vector<float> af, bf;
      if (it.Aq) {
        af.resize(static_cast<size_t>(a.M) * a.K);
        gemm_dequantize(c.mul_fmt, a.M, a.K, it.Aq, a.lda, af.data());
        fa.A = af.data();
        fa.lda = a.K;
      }
      if (it.Bq) {
        bf.resize(static_cast<size_t>(a.K) * a.N);
        gemm_dequantize(c.mul_fmt, a.K, a.N, it.Bq, a.ldb, bf.data());
        fa.B = bf.data();
        fa.ldb = a.N;
      }
      gemm(c, fa);
      continue;
    }
    // Quantize the float side(s) and route through gemm_bits.
    std::vector<uint32_t> qa, qb;
    GemmBitsArgs b;
    b.M = a.M;
    b.N = a.N;
    b.K = a.K;
    b.C = a.C;
    b.ldc = a.ldc;
    b.accumulate = a.accumulate;
    b.seed = a.seed;
    b.threads = a.threads;
    b.seed_row_period = a.seed_row_period;
    b.seed_col_period = a.seed_col_period;
    if (it.Aq) {
      b.Aq = it.Aq;
      b.lda = a.lda;
    } else {
      qa.resize(static_cast<size_t>(a.M) * a.K);
      gemm_quantize(c.mul_fmt, a.M, a.K, a.A, a.lda, qa.data(), a.threads);
      b.Aq = qa.data();
      b.lda = a.K;
    }
    if (it.Bq) {
      b.Bq = it.Bq;
      b.ldb = a.ldb;
    } else {
      qb.resize(static_cast<size_t>(a.K) * a.N);
      gemm_quantize(c.mul_fmt, a.K, a.N, a.B, a.ldb, qb.data(), a.threads);
      b.Bq = qb.data();
      b.ldb = a.N;
    }
    gemm_bits(c, b);
  }
}

namespace {

/// Identity of one packable B plane: pointer, bits-vs-float space, dims,
/// and the (normalized) quantization format the panel layout depends on.
/// The key omits the adder / random-bit fields two passes may disagree on;
/// prequantized and float submissions of the same plane key separately
/// (distinct pointer spaces).
using PlaneKey = std::tuple<const void*, bool, int, int, int, int, int, bool>;

PlaneKey plane_key(const GemmBatchItem& it, const MacConfig& cfg) {
  return PlaneKey{it.Bq ? static_cast<const void*>(it.Bq)
                        : static_cast<const void*>(it.args.B),
                  it.Bq != nullptr,
                  it.args.ldb,
                  it.args.K,
                  it.args.N,
                  cfg.mul_fmt.exp_bits,
                  cfg.mul_fmt.man_bits,
                  cfg.mul_fmt.subnormals};
}

/// Quantizes (when the item carries floats) and packs one item's B plane
/// into the panel layout for its normalized config.
PackedBPanels pack_item_plane(const GemmBatchItem& it, const MacConfig& cfg) {
  const GemmArgs& a = it.args;
  if (it.Bq) return gemm_pack_b(cfg, a.K, a.N, it.Bq, a.ldb, a.threads);
  std::vector<uint32_t> bq(static_cast<size_t>(a.K) * a.N);
  gemm_quantize(cfg.mul_fmt, a.K, a.N, a.B, a.ldb, bq.data(), a.threads);
  return gemm_pack_b(cfg, a.K, a.N, bq.data(), a.N, a.threads);
}

/// Bytes one float B plane quantizes into under `cfg` (byte-rounded per
/// value, as Telemetry::record_quantize counts them).
uint64_t plane_quant_bytes(const GemmBatchItem& it, const MacConfig& cfg) {
  return static_cast<uint64_t>(it.args.K) * it.args.N *
         static_cast<uint64_t>((cfg.mul_fmt.width() + 7) / 8);
}

/// Thread cap for a cross-problem sweep: 0 means "full hardware
/// concurrency", so any uncapped item uncaps the whole batch.
int batch_thread_cap(const GemmBatchItem* items, size_t count) {
  int threads = 0;
  for (size_t i = 0; i < count; ++i) {
    if (items[i].args.threads <= 0) return 0;
    threads = std::max(threads, items[i].args.threads);
  }
  return threads;
}

/// FP32 baseline: floats untouched, gemm_ref. The MacConfig is ignored.
class Fp32Backend final : public MatmulBackend {
 public:
  std::string name() const override { return "fp32"; }
  bool bit_accurate() const override { return false; }
  // No randomness at all, so seed periods are vacuously honored — grouping
  // callers may concatenate problems freely.
  bool supports_grouped() const override { return true; }
  void gemm(const MacConfig&, const GemmArgs& a) const override {
    gemm_ref(a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc, a.accumulate,
             a.threads);
  }
};

/// The fused emulation engine (docs/PERF.md): blocked GEMM, decoded adder
/// cores, product table, AVX-512 group chain, persistent thread pool.
class FusedBackend final : public MatmulBackend {
 public:
  std::string name() const override { return "fused"; }
  bool bit_accurate() const override { return true; }
  bool supports_prequantized() const override { return true; }
  bool supports_grouped() const override { return true; }
  void gemm(const MacConfig& cfg, const GemmArgs& a) const override {
    gemm_mac(cfg, a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc,
             a.accumulate, a.seed, a.threads, a.seed_row_period,
             a.seed_col_period);
  }
  void gemm_bits(const MacConfig& cfg, const GemmBitsArgs& a) const override {
    gemm_mac_bits(cfg, a.M, a.N, a.K, a.Aq, a.lda, a.Bq, a.ldb, a.C, a.ldc,
                  a.accumulate, a.seed, a.threads, a.seed_row_period,
                  a.seed_col_period);
  }
};

/// The seed implementation (one MacUnit per output element) — the golden
/// baseline the fused engine is verified against, now selectable by name.
class ReferenceBackend final : public MatmulBackend {
 public:
  std::string name() const override { return "reference"; }
  bool bit_accurate() const override { return true; }
  bool supports_grouped() const override { return true; }
  void gemm(const MacConfig& cfg, const GemmArgs& a) const override {
    gemm_mac_reference(cfg, a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc,
                       a.accumulate, a.seed, a.threads, a.seed_row_period,
                       a.seed_col_period);
  }
};

/// Batch-sharding variant of the fused engine. Single GEMMs delegate to the
/// fused paths unchanged (same bits, same speed); gemm_batch() prepares all
/// operands up front — quantizing and panel-packing each *unique* B plane
/// exactly once, keyed on (pointer, dims, quantization format) so
/// fan-out batches over a shared weight plane pay one pack — and then
/// shards whole problems across the persistent thread pool with grain 1:
/// work-stealing rebalances across problems instead of splitting rows
/// within one, which keeps every problem's panel working set on a single
/// core. Per-element seeds make the result bit-identical to a sequential
/// fused loop at any thread count (asserted by
/// tests/engine/batched_backend_test.cpp).
class BatchedBackend final : public MatmulBackend {
 public:
  std::string name() const override { return "batched"; }
  bool bit_accurate() const override { return true; }
  bool supports_prequantized() const override { return true; }
  bool supports_batch() const override { return true; }
  bool supports_grouped() const override { return true; }
  void gemm(const MacConfig& cfg, const GemmArgs& a) const override {
    gemm_mac(cfg, a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc,
             a.accumulate, a.seed, a.threads, a.seed_row_period,
             a.seed_col_period);
  }
  void gemm_bits(const MacConfig& cfg, const GemmBitsArgs& a) const override {
    gemm_mac_bits(cfg, a.M, a.N, a.K, a.Aq, a.lda, a.Bq, a.ldb, a.C, a.ldc,
                  a.accumulate, a.seed, a.threads, a.seed_row_period,
                  a.seed_col_period);
  }

  void gemm_batch(const GemmBatchItem* items, size_t count) const override {
    if (count <= 1) {
      // The sequential default handles a lone item (including its
      // prequantized planes) without the batch staging.
      MatmulBackend::gemm_batch(items, count);
      return;
    }
    // Stage 1: quantize A operands (cached planes pass through untouched)
    // and pack unique B planes, once per batch (plane_key above).
    struct Prepared {
      MacConfig cfg;
      std::vector<uint32_t> aq_store;
      const uint32_t* aq = nullptr;
      int lda = 0;
      const PackedBPanels* b = nullptr;
    };
    std::vector<Prepared> prep(count);
    std::vector<std::pair<PlaneKey, PackedBPanels>> planes;
    planes.reserve(count);  // stable addresses for the p.b pointers
    const int threads = batch_thread_cap(items, count);
    for (size_t i = 0; i < count; ++i) {
      const GemmBatchItem& it = items[i];
      const GemmArgs& a = it.args;
      Prepared& p = prep[i];
      p.cfg = it.cfg.normalized();
      if (it.Aq) {
        p.aq = it.Aq;
        p.lda = a.lda;
      } else {
        p.aq_store.resize(static_cast<size_t>(a.M) * a.K);
        gemm_quantize(p.cfg.mul_fmt, a.M, a.K, a.A, a.lda,
                      p.aq_store.data(), a.threads);
        p.aq = p.aq_store.data();
        p.lda = a.K;
      }
      const PlaneKey key = plane_key(it, p.cfg);
      for (const auto& [k, panels] : planes) {
        if (k == key) {
          p.b = &panels;
          break;
        }
      }
      if (!p.b) {
        planes.emplace_back(key, pack_item_plane(it, p.cfg));
        p.b = &planes.back().second;
      }
    }
    // Stage 2: one problem per pool chunk; a worker that finishes its
    // problems steals whole problems from its siblings.
    ThreadPool::global().parallel_for(
        0, static_cast<int64_t>(count),
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            const GemmArgs& a = items[i].args;
            const Prepared& p = prep[i];
            gemm_mac_bits_packed(p.cfg, a.M, a.N, a.K, p.aq, p.lda, *p.b,
                                 a.C, a.ldc, a.accumulate, a.seed, a.threads,
                                 a.seed_row_period, a.seed_col_period);
          }
        },
        threads, /*grain=*/1);
  }
};

/// Topology-aware batch scheduler on the gemm_batch boundary. Whole
/// problems are routed round-robin to worker shards (default shard count =
/// the NUMA nodes ThreadPool::topology() detected; overridden per process
/// by --shards / SRMAC_SHARDS / ThreadPool::set_default_shards, or pinned
/// per instance through the constructor). Each shard's queue is drained by
/// resident participants that steal cross-shard only when their own shard
/// runs dry, and quantized/packed B planes live in per-shard caches: a
/// plane reused across a batch (the per-layer weight fan-out) is packed
/// once per shard that touches it instead of once per problem. (No CPU
/// pinning — the locality is structural, from shard-local queues and
/// caches, not enforced affinity.) Single GEMMs delegate to the
/// fused paths unchanged. Per-element seeds make the result bit-identical
/// to the "batched" backend, and therefore to the sequential fused loop,
/// at any shard count (tests/engine/sharded_backend_test.cpp).
class ShardedBackend final : public MatmulBackend, public ShardStatsSource {
 public:
  /// `shards` pins the shard count; 0 defers to ThreadPool::default_shards
  /// at each dispatch (the registry's factory uses 0).
  explicit ShardedBackend(int shards = 0) : shards_(shards) {}

  std::string name() const override { return "sharded"; }
  bool bit_accurate() const override { return true; }
  bool supports_prequantized() const override { return true; }
  bool supports_batch() const override { return true; }
  bool supports_grouped() const override { return true; }
  void gemm(const MacConfig& cfg, const GemmArgs& a) const override {
    gemm_mac(cfg, a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc,
             a.accumulate, a.seed, a.threads, a.seed_row_period,
             a.seed_col_period);
  }
  void gemm_bits(const MacConfig& cfg, const GemmBitsArgs& a) const override {
    gemm_mac_bits(cfg, a.M, a.N, a.K, a.Aq, a.lda, a.Bq, a.ldb, a.C, a.ldc,
                  a.accumulate, a.seed, a.threads, a.seed_row_period,
                  a.seed_col_period);
  }

  void gemm_batch(const GemmBatchItem* items, size_t count) const override {
    if (count <= 1) {
      MatmulBackend::gemm_batch(items, count);
      // The default dispatch quantized any float B itself; fold the bytes
      // into the cumulative counter so the telemetry dispatcher's
      // shard-aware accounting (which leaves B planes to us) stays exact.
      uint64_t bytes = 0;
      for (size_t i = 0; i < count; ++i)
        if (!items[i].Bq)
          bytes += plane_quant_bytes(items[i], items[i].cfg.normalized());
      if (bytes) {
        std::lock_guard<std::mutex> lk(stats_m_);
        plane_bytes_ += bytes;
      }
      return;
    }
    const int requested =
        shards_ > 0 ? shards_ : ThreadPool::default_shards();
    const int S = static_cast<int>(std::min<int64_t>(
        std::max(1, requested), static_cast<int64_t>(count)));

    // Per-shard plane caches: packed lazily by whichever of the shard's
    // participants needs the plane first, under the shard's own lock —
    // contention stays intra-shard. A stolen problem reads (and on a miss
    // fills) its *home* shard's cache, so the pack it leaves behind is the
    // one the shard's resident threads will reuse.
    struct ShardCache {
      std::mutex m;
      std::deque<std::pair<PlaneKey, PackedBPanels>> planes;  // stable refs
      uint64_t packed = 0;
      uint64_t quantized_bytes = 0;  ///< float planes this shard quantized
    };
    std::vector<ShardCache> caches(S);
    ThreadPool::ShardStats run;
    ThreadPool::global().parallel_for_sharded(
        static_cast<int64_t>(count), S,
        [&](int64_t i) {
          const GemmBatchItem& it = items[i];
          const GemmArgs& a = it.args;
          const MacConfig cfg = it.cfg.normalized();
          // A operand: cached bits pass through, floats quantize locally
          // (on the executing shard, like every other per-problem cost).
          std::vector<uint32_t> aq_store;
          const uint32_t* aq = it.Aq;
          int lda = a.lda;
          if (!aq) {
            aq_store.resize(static_cast<size_t>(a.M) * a.K);
            gemm_quantize(cfg.mul_fmt, a.M, a.K, a.A, a.lda, aq_store.data(),
                          a.threads);
            aq = aq_store.data();
            lda = a.K;
          }
          ShardCache& cache = caches[i % S];
          const PlaneKey key = plane_key(it, cfg);
          auto lookup = [&]() -> const PackedBPanels* {
            for (const auto& [k, p] : cache.planes)
              if (k == key) return &p;
            return nullptr;
          };
          const PackedBPanels* panels = nullptr;
          {
            std::lock_guard<std::mutex> lk(cache.m);
            panels = lookup();
          }
          if (!panels) {
            // Pack outside the lock so shard mates whose next problem hits
            // a different plane keep running; on the rare concurrent first
            // touch the loser discards its pack (re-check before insert).
            PackedBPanels packed = pack_item_plane(it, cfg);
            std::lock_guard<std::mutex> lk(cache.m);
            panels = lookup();
            if (!panels) {
              cache.planes.emplace_back(key, std::move(packed));
              cache.packed += 1;
              if (!it.Bq) cache.quantized_bytes += plane_quant_bytes(it, cfg);
              panels = &cache.planes.back().second;
            }
          }
          gemm_mac_bits_packed(cfg, a.M, a.N, a.K, aq, lda, *panels, a.C,
                               a.ldc, a.accumulate, a.seed, a.threads,
                               a.seed_row_period, a.seed_col_period);
        },
        [S](int64_t i) { return static_cast<int>(i % S); }, &run,
        batch_thread_cap(items, count));

    std::lock_guard<std::mutex> lk(stats_m_);
    migrations_ += run.migrations;
    if (planes_packed_.size() < static_cast<size_t>(S))
      planes_packed_.resize(S);
    for (int s = 0; s < S; ++s) {
      planes_packed_[s] += caches[s].packed;
      plane_bytes_ += caches[s].quantized_bytes;
    }
  }

  Stats shard_stats() const override {
    std::lock_guard<std::mutex> lk(stats_m_);
    return Stats{migrations_, planes_packed_, plane_bytes_};
  }

 private:
  int shards_;
  mutable std::mutex stats_m_;
  mutable uint64_t migrations_ = 0;
  mutable std::vector<uint64_t> planes_packed_;
  mutable uint64_t plane_bytes_ = 0;
};

/// The functional systolic-array simulator: a rows x cols grid of SR-MAC
/// PEs with per-PE seeds (decorrelated from the fused/reference per-element
/// seeding — this backend models the accelerator, it does not reproduce the
/// software engine's bits) plus the dataflow's cycle model.
class SystolicBackend final : public MatmulBackend {
 public:
  SystolicBackend(int rows, int cols) : rows_(rows), cols_(cols) {}
  std::string name() const override { return "systolic"; }
  bool bit_accurate() const override { return true; }
  void gemm(const MacConfig& cfg, const GemmArgs& a) const override {
    SystolicArray array(cfg, rows_, cols_, a.seed);
    array.gemm(a.M, a.N, a.K, a.A, a.lda, a.B, a.ldb, a.C, a.ldc,
               a.accumulate, a.threads);
  }

 private:
  int rows_, cols_;
};

}  // namespace

BackendRegistry::BackendRegistry() {
  factories_["fp32"] = [] { return std::make_shared<Fp32Backend>(); };
  factories_["fused"] = [] { return std::make_shared<FusedBackend>(); };
  factories_["reference"] = [] { return std::make_shared<ReferenceBackend>(); };
  factories_["batched"] = [] { return std::make_shared<BatchedBackend>(); };
  factories_["sharded"] = [] { return std::make_shared<ShardedBackend>(0); };
  factories_["systolic"] = [] { return std::make_shared<SystolicBackend>(16, 16); };
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(const std::string& name,
                                       Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[name] = std::move(factory);
}

std::shared_ptr<MatmulBackend> BackendRegistry::create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown compute backend \"" + name +
                                "\" (registered: " + known + ")");
  }
  return factory();
}

const MatmulBackend* BackendRegistry::get(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = shared_.find(name);
    if (it != shared_.end()) return it->second.get();
  }
  std::shared_ptr<MatmulBackend> instance = create(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = shared_.emplace(name, std::move(instance));
  return it->second.get();
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

bool BackendRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) != 0;
}

}  // namespace srmac
