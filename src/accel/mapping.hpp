#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/systolic_sim.hpp"
#include "hwcost/systolic_cost.hpp"

namespace srmac::accel {

/// GEMM dimensions of one network layer after im2col lowering.
struct LayerShape {
  std::string name;
  int M = 0;  ///< output pixels * batch
  int N = 0;  ///< output channels
  int K = 0;  ///< input channels * kernel area
};

/// The GEMM shapes of the ResNet-20 (CIFAR-scale) forward pass — the
/// workload the paper trains — for batch size 1.
std::vector<LayerShape> resnet20_layer_shapes(int image_hw = 32);

/// Analytic mapping of one layer onto a rows x cols array (no simulation):
/// cycles from the dataflow formula, operand/result traffic in words, and
/// energy from the per-PE cost model at the modelled clock.
struct MappingReport {
  LayerShape shape;
  uint64_t cycles = 0;
  uint64_t macs = 0;
  double utilization = 0.0;
  uint64_t a_words = 0, b_words = 0, c_words = 0;
  double time_us = 0.0;       ///< cycles * clock
  double energy_uj = 0.0;     ///< MAC energy + buffer access energy
};

/// Per-access energy for the operand buffers (pJ/word), a small SRAM
/// figure consistent with the 28nm-class MAC numbers.
struct BufferEnergyModel {
  double pj_per_a_word = 0.35;
  double pj_per_b_word = 0.35;
  double pj_per_c_word = 0.60;  ///< wider accumulator-format word
};

MappingReport map_layer(const LayerShape& shape, const MacConfig& cfg,
                        const hw::SystolicCostOptions& opt = {},
                        Dataflow dataflow = Dataflow::kOutputStationary,
                        const BufferEnergyModel& be = {});

/// Maps a whole network and sums the report (per-layer rows + a total).
std::vector<MappingReport> map_network(const std::vector<LayerShape>& layers,
                                       const MacConfig& cfg,
                                       const hw::SystolicCostOptions& opt = {},
                                       Dataflow dataflow =
                                           Dataflow::kOutputStationary);

}  // namespace srmac::accel
