#pragma once

#include <cstdint>
#include <vector>

#include "mac/mac_config.hpp"
#include "mac/mac_unit.hpp"

namespace srmac::accel {

/// Which dataflow the array implements.
///
/// kOutputStationary: every PE owns one C element; A streams in from the
/// left edge, B from the top, both skewed one cycle per row/column.
/// kWeightStationary: each PE holds one B element; A streams from the
/// left while partial sums flow down the columns (one accumulation per PE
/// per result, in the same k order as the OS chain).
enum class Dataflow { kOutputStationary, kWeightStationary };

/// Per-run statistics of the cycle-accurate simulation.
struct SimStats {
  uint64_t cycles = 0;          ///< clock edges simulated
  uint64_t macs = 0;            ///< useful MAC operations retired
  uint64_t a_reads = 0;         ///< operand words fetched from the A buffer
  uint64_t b_reads = 0;
  uint64_t c_writes = 0;        ///< results drained to the C buffer
  uint64_t c_reads = 0;         ///< partial sums re-fetched (WS k-tiling)
  uint64_t active_pe_cycles = 0;  ///< PEs with a valid MAC that cycle
  double utilization() const {
    const double denom = static_cast<double>(cycles);
    return denom > 0 ? static_cast<double>(macs) /
                           (denom * static_cast<double>(pe_count))
                     : 0.0;
  }
  int pe_count = 0;
};

/// Register-level, cycle-accurate model of the paper's future-work
/// accelerator: a rows x cols grid of SR-MAC PEs with operand registers
/// between neighbours, skewed edge feeders, and a drain network.
///
/// Unlike mac::SystolicArray (a functional model with an analytic cycle
/// formula), this simulator moves every operand through the pipeline
/// registers cycle by cycle; the arithmetic still runs through the same
/// bit-accurate MacUnit, and with matching per-PE seeds the two models
/// produce identical bits while this one also produces exact cycle,
/// buffer-traffic and PE-activity numbers (verified in tests).
class CycleAccurateArray {
 public:
  CycleAccurateArray(const MacConfig& cfg, int rows, int cols,
                     Dataflow dataflow = Dataflow::kOutputStationary,
                     uint64_t seed = 0xA11CAull);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  Dataflow dataflow() const { return dataflow_; }

  /// C[MxN] = A[MxK] * B[KxN] (row-major floats, quantized into mul_fmt on
  /// the way into the operand buffers). Returns the run's statistics.
  /// Independent tiles simulate in parallel on the shared thread pool
  /// (`threads` as in gemm_mac: 0 = hardware concurrency); per-PE seeds
  /// make the results and statistics identical at any thread count.
  SimStats gemm(int M, int N, int K, const float* A, const float* B, float* C,
                int threads = 0);

  /// Analytic cycle count the simulator is expected to hit (tested equal):
  /// per (rows x cols) output tile the skew fill + K accumulations + the
  /// column drain, tiles back to back.
  uint64_t expected_cycles(int M, int N, int K) const;

 private:
  SimStats gemm_output_stationary(int M, int N, int K,
                                  const std::vector<uint32_t>& qa,
                                  const std::vector<uint32_t>& qb, float* C,
                                  int threads);
  SimStats gemm_weight_stationary(int M, int N, int K,
                                  const std::vector<uint32_t>& qa,
                                  const std::vector<uint32_t>& qb, float* C,
                                  int threads);
  /// Simulates one output-stationary tile (ti, tj); writes its C block and
  /// accumulates into `st`.
  void simulate_os_tile(int ti, int tj, int M, int N, int K,
                        const std::vector<uint32_t>& qa,
                        const std::vector<uint32_t>& qb, float* C,
                        SimStats* st) const;
  /// Simulates one weight-stationary (kt, tj) tile against the running
  /// partial-sum buffer (columns tj*cols..): tiles with distinct tj are
  /// independent within one kt wave.
  void simulate_ws_tile(int kt, int tj, int M, int N, int K,
                        const std::vector<uint32_t>& qa,
                        const std::vector<uint32_t>& qb,
                        std::vector<uint32_t>* partial, SimStats* st) const;

  MacConfig cfg_;
  int rows_, cols_;
  Dataflow dataflow_;
  uint64_t seed_;
};

}  // namespace srmac::accel
