#include "accel/mapping.hpp"

#include <cassert>

namespace srmac::accel {

std::vector<LayerShape> resnet20_layer_shapes(int image_hw) {
  // Three stages of six 3x3 convolutions (16, 32, 64 channels), strided at
  // the stage boundaries, plus the stem and the final FC; im2col lowering:
  // M = H*W, N = C_out, K = C_in * 9.
  std::vector<LayerShape> v;
  const int hw1 = image_hw, hw2 = image_hw / 2, hw3 = image_hw / 4;
  v.push_back({"stem3x3", hw1 * hw1, 16, 3 * 9});
  for (int i = 0; i < 6; ++i)
    v.push_back({"stage1_conv" + std::to_string(i), hw1 * hw1, 16, 16 * 9});
  v.push_back({"stage2_conv0", hw2 * hw2, 32, 16 * 9});
  for (int i = 1; i < 6; ++i)
    v.push_back({"stage2_conv" + std::to_string(i), hw2 * hw2, 32, 32 * 9});
  v.push_back({"stage3_conv0", hw3 * hw3, 64, 32 * 9});
  for (int i = 1; i < 6; ++i)
    v.push_back({"stage3_conv" + std::to_string(i), hw3 * hw3, 64, 64 * 9});
  v.push_back({"fc", 1, 10, 64});
  return v;
}

MappingReport map_layer(const LayerShape& shape, const MacConfig& cfg,
                        const hw::SystolicCostOptions& opt,
                        Dataflow dataflow, const BufferEnergyModel& be) {
  MappingReport rep;
  rep.shape = shape;
  const int R = opt.rows, C = opt.cols;
  const int M = shape.M, N = shape.N, K = shape.K;
  rep.macs = static_cast<uint64_t>(M) * N * K;

  if (dataflow == Dataflow::kOutputStationary) {
    const uint64_t tiles_m = (M + R - 1) / R;
    const uint64_t tiles_n = (N + C - 1) / C;
    rep.cycles = tiles_m * tiles_n *
                     (static_cast<uint64_t>(K) + R + C - 2) +
                 R + C;
    // Each tile streams its A rows and B columns once.
    rep.a_words = tiles_n * static_cast<uint64_t>(M) * K;
    rep.b_words = tiles_m * static_cast<uint64_t>(N) * K;
    rep.c_words = static_cast<uint64_t>(M) * N;
  } else {
    const uint64_t tiles_k = (K + R - 1) / R;
    const uint64_t tiles_n = (N + C - 1) / C;
    rep.cycles = tiles_k * tiles_n *
                 (static_cast<uint64_t>(R) + M + R + C - 2);
    rep.a_words = tiles_n * static_cast<uint64_t>(M) * K;
    rep.b_words = static_cast<uint64_t>(N) * K;
    // Partials written per (k, n) tile and re-read on the next k tile.
    rep.c_words = tiles_k * static_cast<uint64_t>(M) * N +
                  (tiles_k - 1) * static_cast<uint64_t>(M) * N;
  }
  rep.utilization = static_cast<double>(rep.macs) /
                    (static_cast<double>(rep.cycles) * R * C);

  const hw::SystolicReport cost = hw::systolic_cost(cfg, opt);
  rep.time_us = static_cast<double>(rep.cycles) * cost.clock_ns * 1e-3;
  // nJ/kMAC -> pJ/MAC; buffer traffic on top.
  const double mac_pj = cost.energy_nj_per_kmac;
  rep.energy_uj = (static_cast<double>(rep.macs) * mac_pj +
                   static_cast<double>(rep.a_words) * be.pj_per_a_word +
                   static_cast<double>(rep.b_words) * be.pj_per_b_word +
                   static_cast<double>(rep.c_words) * be.pj_per_c_word) *
                  1e-6;
  return rep;
}

std::vector<MappingReport> map_network(const std::vector<LayerShape>& layers,
                                       const MacConfig& cfg,
                                       const hw::SystolicCostOptions& opt,
                                       Dataflow dataflow) {
  std::vector<MappingReport> reports;
  reports.reserve(layers.size() + 1);
  MappingReport total;
  total.shape.name = "TOTAL";
  for (const LayerShape& l : layers) {
    reports.push_back(map_layer(l, cfg, opt, dataflow));
    const MappingReport& r = reports.back();
    total.cycles += r.cycles;
    total.macs += r.macs;
    total.a_words += r.a_words;
    total.b_words += r.b_words;
    total.c_words += r.c_words;
    total.time_us += r.time_us;
    total.energy_uj += r.energy_uj;
  }
  total.utilization =
      static_cast<double>(total.macs) /
      (static_cast<double>(total.cycles) * opt.rows * opt.cols);
  reports.push_back(total);
  return reports;
}

}  // namespace srmac::accel
