#include "accel/systolic_sim.hpp"

#include <cassert>
#include <mutex>

#include "fpemu/softfloat.hpp"
#include "mac/gemm.hpp"
#include "util/thread_pool.hpp"

namespace srmac::accel {

namespace {

/// Per-PE LFSR seed; deliberately the same mixing as mac::SystolicArray so
/// the two models are bit-identical under output-stationary dataflow.
uint64_t pe_seed(uint64_t base, int tile_i, int tile_j, int pi, int pj) {
  uint64_t z = base + 0x9E3779B97F4A7C15ull *
                          (static_cast<uint64_t>(tile_i) << 32 |
                           static_cast<uint64_t>(tile_j));
  z ^= (static_cast<uint64_t>(pi) << 17) + static_cast<uint64_t>(pj) +
       0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 30)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// One pipeline register carrying an operand and its valid flag.
struct Reg {
  uint32_t value = 0;
  bool valid = false;
};

/// Adds `from`'s event counters into `into` (pe_count is set by the driver;
/// tile counters are order-independent sums, so results are identical at
/// any thread count).
void merge_stats(const SimStats& from, SimStats* into) {
  into->cycles += from.cycles;
  into->macs += from.macs;
  into->a_reads += from.a_reads;
  into->b_reads += from.b_reads;
  into->c_writes += from.c_writes;
  into->c_reads += from.c_reads;
  into->active_pe_cycles += from.active_pe_cycles;
}

}  // namespace

CycleAccurateArray::CycleAccurateArray(const MacConfig& cfg, int rows,
                                       int cols, Dataflow dataflow,
                                       uint64_t seed)
    : cfg_(cfg.normalized()),
      rows_(rows),
      cols_(cols),
      dataflow_(dataflow),
      seed_(seed) {
  assert(rows > 0 && cols > 0);
}

uint64_t CycleAccurateArray::expected_cycles(int M, int N, int K) const {
  if (dataflow_ == Dataflow::kOutputStationary) {
    const uint64_t tiles_m = (M + rows_ - 1) / rows_;
    const uint64_t tiles_n = (N + cols_ - 1) / cols_;
    const uint64_t per_tile = static_cast<uint64_t>(K) + rows_ + cols_ - 2;
    return tiles_m * tiles_n * per_tile + rows_ + cols_;
  }
  // Weight-stationary: per (k, n) tile, `rows` preload cycles plus the
  // M-deep stream through rows+cols-2 stages of skew.
  const uint64_t tiles_k = (K + rows_ - 1) / rows_;
  const uint64_t tiles_n = (N + cols_ - 1) / cols_;
  const uint64_t per_tile =
      static_cast<uint64_t>(rows_) + static_cast<uint64_t>(M) + rows_ +
      cols_ - 2;
  return tiles_k * tiles_n * per_tile;
}

SimStats CycleAccurateArray::gemm(int M, int N, int K, const float* A,
                                  const float* B, float* C, int threads) {
  // Operand buffers hold mul_fmt words, exactly what the feeders read —
  // produced by the engine's shared operand-quantization pass.
  std::vector<uint32_t> qa(static_cast<size_t>(M) * K);
  std::vector<uint32_t> qb(static_cast<size_t>(K) * N);
  gemm_quantize(cfg_.mul_fmt, M, K, A, K, qa.data(), threads);
  gemm_quantize(cfg_.mul_fmt, K, N, B, N, qb.data(), threads);

  return dataflow_ == Dataflow::kOutputStationary
             ? gemm_output_stationary(M, N, K, qa, qb, C, threads)
             : gemm_weight_stationary(M, N, K, qa, qb, C, threads);
}

void CycleAccurateArray::simulate_os_tile(int ti, int tj, int M, int N, int K,
                                          const std::vector<uint32_t>& qa,
                                          const std::vector<uint32_t>& qb,
                                          float* C, SimStats* st) const {
  const size_t npe = static_cast<size_t>(rows_) * cols_;
  // Fresh PEs per output tile (accumulators at +0, tile-specific LFSR
  // phase), as in the functional reference.
  std::vector<MacUnit> pes;
  pes.reserve(npe);
  for (int pi = 0; pi < rows_; ++pi)
    for (int pj = 0; pj < cols_; ++pj)
      pes.emplace_back(cfg_, pe_seed(seed_, ti, tj, pi, pj));

  std::vector<Reg> a_cur(npe), b_cur(npe), a_nxt(npe), b_nxt(npe);
  const int tile_cycles = K + rows_ + cols_ - 2;
  for (int t = 0; t < tile_cycles; ++t) {
    ++st->cycles;
    // Compute this cycle's operand at every PE: the left/top edges see
    // the skewed feeder streams, interior PEs see their neighbours'
    // registers from the previous edge.
    for (int pi = 0; pi < rows_; ++pi) {
      for (int pj = 0; pj < cols_; ++pj) {
        const size_t at = static_cast<size_t>(pi) * cols_ + pj;
        Reg a_in, b_in;
        if (pj == 0) {
          const int k = t - pi;
          const int i = ti * rows_ + pi;
          if (k >= 0 && k < K && i < M) {
            a_in = {qa[static_cast<size_t>(i) * K + k], true};
            ++st->a_reads;
          }
        } else {
          a_in = a_cur[at - 1];
        }
        if (pi == 0) {
          const int k = t - pj;
          const int j = tj * cols_ + pj;
          if (k >= 0 && k < K && j < N) {
            b_in = {qb[static_cast<size_t>(k) * N + j], true};
            ++st->b_reads;
          }
        } else {
          b_in = b_cur[at - static_cast<size_t>(cols_)];
        }
        if (a_in.valid && b_in.valid) {
          pes[at].step(a_in.value, b_in.value);
          ++st->macs;
          ++st->active_pe_cycles;
        }
        a_nxt[at] = a_in;
        b_nxt[at] = b_in;
      }
    }
    a_cur.swap(a_nxt);
    b_cur.swap(b_nxt);
  }
  // Drain overlaps the next tile's fill through a separate network;
  // only the traffic is charged here.
  for (int pi = 0; pi < rows_ && ti * rows_ + pi < M; ++pi)
    for (int pj = 0; pj < cols_ && tj * cols_ + pj < N; ++pj) {
      const int i = ti * rows_ + pi, j = tj * cols_ + pj;
      C[static_cast<size_t>(i) * N + j] = static_cast<float>(
          pes[static_cast<size_t>(pi) * cols_ + pj].acc_value());
      ++st->c_writes;
    }
}

SimStats CycleAccurateArray::gemm_output_stationary(
    int M, int N, int K, const std::vector<uint32_t>& qa,
    const std::vector<uint32_t>& qb, float* C, int threads) {
  SimStats st;
  st.pe_count = rows_ * cols_;
  const int tiles_m = (M + rows_ - 1) / rows_;
  const int tiles_n = (N + cols_ - 1) / cols_;
  std::mutex merge_m;
  // Output tiles own disjoint C blocks and their own PE/LFSR state: they
  // simulate concurrently, with per-task statistics merged at the end.
  ThreadPool::global().parallel_for(
      0, static_cast<int64_t>(tiles_m) * tiles_n,
      [&](int64_t lo, int64_t hi) {
        SimStats local;
        for (int64_t t = lo; t < hi; ++t)
          simulate_os_tile(static_cast<int>(t / tiles_n),
                           static_cast<int>(t % tiles_n), M, N, K, qa, qb, C,
                           &local);
        std::lock_guard<std::mutex> lk(merge_m);
        merge_stats(local, &st);
      },
      threads);
  st.cycles += static_cast<uint64_t>(rows_) + cols_;  // final drain epilogue
  return st;
}

void CycleAccurateArray::simulate_ws_tile(int kt, int tj, int M, int N, int K,
                                          const std::vector<uint32_t>& qa,
                                          const std::vector<uint32_t>& qb,
                                          std::vector<uint32_t>* partial,
                                          SimStats* st) const {
  const size_t npe = static_cast<size_t>(rows_) * cols_;
  std::vector<MacUnit> pes;
  pes.reserve(npe);
  std::vector<uint32_t> weight(npe, 0);
  std::vector<bool> wvalid(npe, false);
  for (int pk = 0; pk < rows_; ++pk)
    for (int pj = 0; pj < cols_; ++pj) {
      pes.emplace_back(cfg_, pe_seed(seed_, kt, tj, pk, pj));
      const int k = kt * rows_ + pk;
      const int j = tj * cols_ + pj;
      const size_t at = static_cast<size_t>(pk) * cols_ + pj;
      if (k < K && j < N) {
        weight[at] = qb[static_cast<size_t>(k) * N + j];
        wvalid[at] = true;
        ++st->b_reads;
      }
    }
  st->cycles += static_cast<uint64_t>(rows_);  // weight preload shift-in

  std::vector<Reg> a_cur(npe), a_nxt(npe);
  std::vector<Reg> p_cur(npe), p_nxt(npe);
  const int tile_cycles = M + rows_ + cols_ - 2;
  for (int t = 0; t < tile_cycles; ++t) {
    ++st->cycles;
    for (int pk = 0; pk < rows_; ++pk) {
      for (int pj = 0; pj < cols_; ++pj) {
        const size_t at = static_cast<size_t>(pk) * cols_ + pj;
        Reg a_in, p_in;
        if (pj == 0) {
          // Row pk streams A column k = kt*rows_+pk, skewed by pk.
          const int i = t - pk;
          const int k = kt * rows_ + pk;
          if (i >= 0 && i < M && k < K) {
            a_in = {qa[static_cast<size_t>(i) * K + k], true};
            ++st->a_reads;
          }
        } else {
          a_in = a_cur[at - 1];
        }
        if (pk == 0) {
          // Top of the column: inject the running partial for row i
          // (previous k tiles), or +0 on the first k tile.
          const int i = t - pj;
          const int j = tj * cols_ + pj;
          if (i >= 0 && i < M && j < N) {
            uint32_t init = 0;
            if (kt > 0) {
              init = (*partial)[static_cast<size_t>(i) * N + j];
              ++st->c_reads;
            }
            p_in = {init, true};
          }
        } else {
          p_in = p_cur[at - static_cast<size_t>(cols_)];
        }
        Reg p_out = p_in;
        if (a_in.valid && p_in.valid && wvalid[at]) {
          pes[at].set_acc(p_in.value);
          p_out.value = pes[at].step(a_in.value, weight[at]);
          ++st->macs;
          ++st->active_pe_cycles;
        }
        a_nxt[at] = a_in;
        p_nxt[at] = p_out;
      }
    }
    a_cur.swap(a_nxt);
    p_cur.swap(p_nxt);
    // Bottom edge emits finished partials.
    for (int pj = 0; pj < cols_; ++pj) {
      const Reg& out = p_cur[static_cast<size_t>(rows_ - 1) * cols_ + pj];
      const int i = t - (rows_ - 1) - pj;
      const int j = tj * cols_ + pj;
      if (out.valid && i >= 0 && i < M && j < N) {
        (*partial)[static_cast<size_t>(i) * N + j] = out.value;
        ++st->c_writes;
      }
    }
  }
}

SimStats CycleAccurateArray::gemm_weight_stationary(
    int M, int N, int K, const std::vector<uint32_t>& qa,
    const std::vector<uint32_t>& qb, float* C, int threads) {
  SimStats st;
  st.pe_count = rows_ * cols_;
  const FpFormat acc = cfg_.acc_fmt;

  // Partial results in accumulator format, +0-initialized.
  std::vector<uint32_t> partial(static_cast<size_t>(M) * N, 0);
  const int tiles_n = (N + cols_ - 1) / cols_;
  std::mutex merge_m;

  // k tiles chain through the partial-sum buffer and stay sequential;
  // within one k wave the column tiles touch disjoint partial columns and
  // run concurrently.
  for (int kt = 0; kt * rows_ < K; ++kt) {
    ThreadPool::global().parallel_for(
        0, tiles_n,
        [&](int64_t lo, int64_t hi) {
          SimStats local;
          for (int64_t tj = lo; tj < hi; ++tj)
            simulate_ws_tile(kt, static_cast<int>(tj), M, N, K, qa, qb,
                             &partial, &local);
          std::lock_guard<std::mutex> lk(merge_m);
          merge_stats(local, &st);
        },
        threads);
  }
  for (int i = 0; i < M; ++i)
    for (int j = 0; j < N; ++j)
      C[static_cast<size_t>(i) * N + j] = static_cast<float>(
          SoftFloat::to_double(acc, partial[static_cast<size_t>(i) * N + j]));
  return st;
}

}  // namespace srmac::accel
