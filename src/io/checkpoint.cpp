#include "io/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/crc32.hpp"

namespace srmac {

namespace {

// Sanity bounds the parser enforces before trusting any length field from
// the file — a corrupt length must fail typed, never drive an allocation.
constexpr uint32_t kMaxStringLen = 1u << 16;    // names / scenario / tag
constexpr uint32_t kMaxTensorCount = 1u << 20;  // parameters per model
constexpr int kMaxNdim = 8;
constexpr uint64_t kMaxTensorBytes = 1ull << 34;  // 16 GiB per tensor

[[noreturn]] void throw_error(CheckpointErrorKind kind,
                              const std::string& what) {
  throw CheckpointError(kind, "checkpoint: " + what);
}

// ---- writer helpers (append to a std::string, little-endian native) ----

void put_u32(std::string& out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void put_u64(std::string& out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

// ---- reader: a thin cursor over std::istream that turns short reads and
// stream failures into typed errors and feeds a running CRC ----

struct StreamCursor {
  std::istream& in;
  uint32_t running_crc = 0;

  void read_exact(void* dst, size_t n, const char* what) {
    in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in.gcount()) != n) {
      if (in.bad()) throw_error(CheckpointErrorKind::kIo,
                                std::string("read failed in ") + what);
      throw_error(CheckpointErrorKind::kTruncated,
                  std::string("file ends inside ") + what);
    }
    running_crc = crc32(dst, n, running_crc);
  }

  uint8_t get_u8(const char* what) {
    uint8_t v;
    read_exact(&v, 1, what);
    return v;
  }

  uint32_t get_u32(const char* what) {
    uint32_t v;
    read_exact(&v, 4, what);
    return v;
  }

  uint64_t get_u64(const char* what) {
    uint64_t v;
    read_exact(&v, 8, what);
    return v;
  }

  std::string get_string(const char* what) {
    const uint32_t len = get_u32(what);
    if (len > kMaxStringLen)
      throw_error(CheckpointErrorKind::kCorrupt,
                  std::string("implausible string length in ") + what);
    std::string s(len, '\0');
    if (len) read_exact(s.data(), len, what);
    return s;
  }
};

}  // namespace

const char* checkpoint_error_kind_name(CheckpointErrorKind k) {
  switch (k) {
    case CheckpointErrorKind::kIo: return "io";
    case CheckpointErrorKind::kBadMagic: return "bad_magic";
    case CheckpointErrorKind::kBadEndianness: return "bad_endianness";
    case CheckpointErrorKind::kBadVersion: return "bad_version";
    case CheckpointErrorKind::kTruncated: return "truncated";
    case CheckpointErrorKind::kCorrupt: return "corrupt";
    case CheckpointErrorKind::kMismatch: return "mismatch";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void write_checkpoint(std::ostream& out, const std::vector<Param*>& params,
                      const std::string& scenario, const std::string& model) {
  // Header is built in memory first: its trailing CRC covers every byte
  // before it, which a streaming write could not know in advance.
  std::string header;
  header.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  put_u32(header, kCheckpointEndianMarker);
  put_u32(header, kCheckpointVersion);
  put_string(header, scenario);
  put_string(header, model);
  put_u32(header, static_cast<uint32_t>(params.size()));
  put_u32(header, crc32(header.data(), header.size()));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  for (const Param* p : params) {
    std::string rec;
    put_string(rec, p->name);
    rec.push_back('\0');  // dtype 0 = f32
    rec.push_back(static_cast<char>(p->value.ndim()));
    for (int d = 0; d < p->value.ndim(); ++d)
      put_u32(rec, static_cast<uint32_t>(p->value.dim(d)));
    const uint64_t bytes =
        static_cast<uint64_t>(p->value.numel()) * sizeof(float);
    put_u64(rec, bytes);
    put_u32(rec, crc32(p->value.data(), static_cast<size_t>(bytes)));
    out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(bytes));
  }
  if (!out) throw_error(CheckpointErrorKind::kIo, "write failed");
}

// ---------------------------------------------------------------------------
// Streaming reader
// ---------------------------------------------------------------------------

CheckpointReader::CheckpointReader(std::istream& in) : in_(in) {
  StreamCursor cur{in_};
  char magic[sizeof(kCheckpointMagic)];
  cur.read_exact(magic, sizeof(magic), "header magic");
  if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0)
    throw_error(CheckpointErrorKind::kBadMagic, "not a checkpoint file");
  // Endianness before version: on a cross-endian file every later integer
  // reads byte-swapped, so this is the last field that parses reliably.
  const uint32_t endian = cur.get_u32("endianness marker");
  if (endian != kCheckpointEndianMarker)
    throw_error(CheckpointErrorKind::kBadEndianness,
                "produced on a host with different byte order");
  meta_.format_version = cur.get_u32("format version");
  if (meta_.format_version != kCheckpointVersion)
    throw_error(CheckpointErrorKind::kBadVersion,
                "unsupported format version " +
                    std::to_string(meta_.format_version));
  meta_.scenario = cur.get_string("scenario string");
  meta_.model = cur.get_string("model tag");
  meta_.tensor_count = cur.get_u32("tensor count");
  if (meta_.tensor_count > kMaxTensorCount)
    throw_error(CheckpointErrorKind::kCorrupt, "implausible tensor count");
  const uint32_t computed = cur.running_crc;
  const uint32_t stored = cur.get_u32("header CRC");
  if (stored != computed)
    throw_error(CheckpointErrorKind::kCorrupt, "header CRC mismatch");
}

std::optional<CheckpointReader::TensorInfo> CheckpointReader::next() {
  if (pending_)
    throw_error(CheckpointErrorKind::kIo,
                "next() called with an unread payload pending");
  if (records_read_ >= meta_.tensor_count) {
    // The trailing check: a well-formed file ends exactly after the last
    // record — trailing garbage means the producer and this parser
    // disagree about the layout, which must not pass silently.
    char extra;
    in_.read(&extra, 1);
    if (in_.gcount() != 0)
      throw_error(CheckpointErrorKind::kCorrupt,
                  "trailing bytes after the last tensor record");
    return std::nullopt;
  }
  StreamCursor cur{in_};
  TensorInfo info;
  info.name = cur.get_string("tensor name");
  info.dtype = cur.get_u8("tensor dtype");
  if (info.dtype != 0)
    throw_error(CheckpointErrorKind::kCorrupt,
                "unknown dtype " + std::to_string(info.dtype) + " for '" +
                    info.name + "'");
  const uint8_t ndim = cur.get_u8("tensor rank");
  if (ndim < 1 || ndim > kMaxNdim)
    throw_error(CheckpointErrorKind::kCorrupt,
                "implausible rank for '" + info.name + "'");
  uint64_t numel = 1;
  for (uint8_t d = 0; d < ndim; ++d) {
    const uint32_t dim = cur.get_u32("tensor shape");
    if (dim == 0 || dim > static_cast<uint32_t>(
                              std::numeric_limits<int>::max()))
      throw_error(CheckpointErrorKind::kCorrupt,
                  "implausible dimension for '" + info.name + "'");
    info.shape.push_back(static_cast<int>(dim));
    numel *= dim;
    if (numel * sizeof(float) > kMaxTensorBytes)
      throw_error(CheckpointErrorKind::kCorrupt,
                  "implausible tensor size for '" + info.name + "'");
  }
  info.byte_len = cur.get_u64("tensor byte length");
  if (info.byte_len != numel * sizeof(float))
    throw_error(CheckpointErrorKind::kCorrupt,
                "byte length disagrees with shape for '" + info.name + "'");
  info.crc = cur.get_u32("tensor CRC");
  ++records_read_;
  pending_ = info;
  return info;
}

void CheckpointReader::read_payload(void* dst) {
  if (!pending_)
    throw_error(CheckpointErrorKind::kIo, "no pending tensor payload");
  StreamCursor cur{in_};
  cur.read_exact(dst, static_cast<size_t>(pending_->byte_len),
                 "tensor payload");
  if (cur.running_crc != pending_->crc)
    throw_error(CheckpointErrorKind::kCorrupt,
                "payload CRC mismatch for '" + pending_->name + "'");
  pending_.reset();
}

void CheckpointReader::skip_payload() {
  if (!pending_)
    throw_error(CheckpointErrorKind::kIo, "no pending tensor payload");
  // Bounce through a bounded buffer so skipping a huge (or lying) record
  // never allocates its full size; the CRC is still verified.
  scratch_.resize(static_cast<size_t>(
      std::min<uint64_t>(pending_->byte_len, 1u << 20)));
  StreamCursor cur{in_};
  uint64_t left = pending_->byte_len;
  while (left) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(left, scratch_.size()));
    cur.read_exact(scratch_.data(), chunk, "tensor payload");
    left -= chunk;
  }
  if (cur.running_crc != pending_->crc)
    throw_error(CheckpointErrorKind::kCorrupt,
                "payload CRC mismatch for '" + pending_->name + "'");
  pending_.reset();
}

// ---------------------------------------------------------------------------
// Model-level load
// ---------------------------------------------------------------------------

CheckpointMeta read_checkpoint(std::istream& in,
                               const std::vector<Param*>& params) {
  CheckpointReader reader(in);
  if (reader.meta().tensor_count != params.size())
    throw_error(CheckpointErrorKind::kMismatch,
                "file has " + std::to_string(reader.meta().tensor_count) +
                    " tensors, model has " + std::to_string(params.size()) +
                    " parameters");
  // Stage every payload first: nothing in the model is touched until the
  // whole file (trailing bytes included) has validated, so a corrupt or
  // truncated checkpoint leaves the model — and any compiled planes built
  // from it — exactly as they were.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t p = 0; p < params.size(); ++p) {
    Param* param = params[p];
    const auto info = reader.next();  // count checked above; always present
    if (info->name != param->name)
      throw_error(CheckpointErrorKind::kMismatch,
                  "expected parameter '" + param->name + "', found '" +
                      info->name + "'");
    bool shape_ok =
        static_cast<int>(info->shape.size()) == param->value.ndim();
    for (size_t d = 0; shape_ok && d < info->shape.size(); ++d)
      shape_ok = info->shape[d] == param->value.dim(static_cast<int>(d));
    if (!shape_ok)
      throw_error(CheckpointErrorKind::kMismatch,
                  "shape mismatch for '" + param->name + "'");
    staged[p].resize(static_cast<size_t>(param->value.numel()));
    reader.read_payload(staged[p].data());
  }
  reader.next();  // trailing-bytes check
  for (size_t p = 0; p < params.size(); ++p) {
    std::memcpy(params[p]->value.data(), staged[p].data(),
                staged[p].size() * sizeof(float));
    params[p]->bump();  // invalidate cached quantized weight planes
  }
  return reader.meta();
}

void save_checkpoint(const std::string& path,
                     const std::vector<Param*>& params,
                     const std::string& scenario,
                     const std::string& model_tag) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw_error(CheckpointErrorKind::kIo, "cannot open " + path);
  write_checkpoint(f, params, scenario, model_tag);
  f.flush();
  if (!f) throw_error(CheckpointErrorKind::kIo, "write failed for " + path);
}

CheckpointMeta load_checkpoint(const std::string& path,
                               const std::vector<Param*>& params) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw_error(CheckpointErrorKind::kIo, "cannot open " + path);
  return read_checkpoint(f, params);
}

void save_checkpoint(const std::string& path, Sequential& model,
                     const std::string& scenario,
                     const std::string& model_tag) {
  std::vector<Param*> params;
  model.collect_params(params);
  save_checkpoint(path, params, scenario, model_tag);
}

CheckpointMeta load_checkpoint(const std::string& path, Sequential& model) {
  std::vector<Param*> params;
  model.collect_params(params);
  return load_checkpoint(path, params);
}

CheckpointMeta read_checkpoint_meta(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw_error(CheckpointErrorKind::kIo, "cannot open " + path);
  return CheckpointReader(f).meta();
}

std::vector<char> serialize_params(const std::vector<Param*>& params,
                                   const std::string& scenario,
                                   const std::string& model) {
  std::ostringstream out(std::ios::binary);
  write_checkpoint(out, params, scenario, model);
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

CheckpointMeta deserialize_params(const std::vector<char>& bytes,
                                  const std::vector<Param*>& params) {
  std::istringstream in(std::string(bytes.begin(), bytes.end()),
                        std::ios::binary);
  return read_checkpoint(in, params);
}

}  // namespace srmac
