#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace srmac {

/// Versioned binary model checkpoints (docs/PERSISTENCE.md).
///
/// A checkpoint pins everything needed to reproduce a model's serving
/// behavior bit for bit: the FP32 master weights in the exact order
/// `Sequential::collect_params` walks them (the same child order as
/// `forward`), plus the engine scenario string the model was trained /
/// meant to be served under — so loading a checkpoint restores not just
/// weights but the quantization configuration their accuracy was measured
/// with. Every tensor record carries a CRC32; the parser is streaming and
/// rejects truncated or corrupted files with typed errors instead of
/// crashing or silently loading garbage.
///
/// File layout (all integers little-endian on the producing host; the
/// header's endianness marker rejects cross-endian files):
///
///   offset  size  field
///   ------  ----  -----
///        0     8  magic "SRMACKPT"
///        8     4  endianness marker 0x01020304 (as written by the producer)
///       12     4  format version (kCheckpointVersion)
///       16   4+n  scenario string (u32 length + bytes)
///        -   4+n  model tag string (u32 length + bytes, e.g. "mlp:64,3")
///        -     4  tensor count
///        -     4  CRC32 of every header byte above
///
/// followed by `tensor count` records:
///
///   field            size
///   -----            ----
///   name             4+n  (u32 length + bytes, e.g. "conv_w")
///   dtype            1    (0 = f32; the only dtype today)
///   ndim             1    (1..8)
///   dims[ndim]       4*ndim
///   byte length      8    (must equal product(dims) * sizeof(dtype))
///   payload CRC32    4
///   payload          byte length

inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr char kCheckpointMagic[8] = {'S', 'R', 'M', 'A',
                                             'C', 'K', 'P', 'T'};
inline constexpr uint32_t kCheckpointEndianMarker = 0x01020304u;

/// What went wrong, machine-readably — the serving/persistence trust
/// boundary never reports corruption as a crash or a bare string.
enum class CheckpointErrorKind {
  kIo,             ///< open/read/write failed at the OS level
  kBadMagic,       ///< not a checkpoint file
  kBadEndianness,  ///< produced on a host with different byte order
  kBadVersion,     ///< format version this build does not understand
  kTruncated,      ///< file ends mid-header or mid-record
  kCorrupt,        ///< a CRC mismatch or an internally inconsistent record
  kMismatch,       ///< tensor name/shape/dtype does not match the model
};

const char* checkpoint_error_kind_name(CheckpointErrorKind k);

/// Thrown by every parse/load failure: std::runtime_error (so generic
/// catch sites keep working) plus the typed kind above.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  CheckpointErrorKind kind() const { return kind_; }

 private:
  CheckpointErrorKind kind_;
};

/// The header's identity fields, returned by every load so callers can
/// adopt the checkpoint's pinned scenario and rebuild its architecture
/// (model tag parses with ModelSpec::parse, nn/model_zoo.hpp).
struct CheckpointMeta {
  uint32_t format_version = 0;
  std::string scenario;  ///< engine scenario the checkpoint pins ("" = unset)
  std::string model;     ///< model-zoo spec tag ("" = unset)
  uint32_t tensor_count = 0;
};

/// Streaming checkpoint parser: validates the header on construction, then
/// hands out one tensor record at a time — next() reads a record's
/// metadata, read_payload()/skip_payload() consume its bytes (read_payload
/// verifies the CRC). Never loads the whole file into memory, and throws
/// CheckpointError on every malformed input. The istream must outlive the
/// reader.
class CheckpointReader {
 public:
  struct TensorInfo {
    std::string name;
    uint8_t dtype = 0;  ///< 0 = f32
    std::vector<int> shape;
    uint64_t byte_len = 0;
    uint32_t crc = 0;
  };

  /// Parses and validates the header; throws CheckpointError (kBadMagic,
  /// kBadEndianness, kBadVersion, kTruncated, kCorrupt, kIo).
  explicit CheckpointReader(std::istream& in);

  const CheckpointMeta& meta() const { return meta_; }

  /// Metadata of the next tensor record, or nullopt after the last one
  /// (which also verifies the file ends exactly there). The previous
  /// record's payload must have been consumed first.
  std::optional<TensorInfo> next();

  /// Reads the pending record's payload into `dst` (info.byte_len bytes)
  /// and verifies its CRC32; throws kTruncated / kCorrupt / kIo.
  void read_payload(void* dst);

  /// Consumes the pending record's payload without keeping it (still
  /// CRC-verified — a skipped-over corrupt tensor should not pass silently).
  void skip_payload();

 private:
  std::istream& in_;
  CheckpointMeta meta_;
  uint32_t records_read_ = 0;
  std::optional<TensorInfo> pending_;  ///< record whose payload is unread
  std::vector<char> scratch_;          ///< skip_payload bounce buffer
};

/// Serializes `params` in order. `scenario`/`model` are the identity
/// strings embedded in the header (pass the engine's scenario so the
/// checkpoint pins its quantization config; pass the ModelSpec tag so
/// loaders can rebuild the architecture). Throws CheckpointError(kIo) on
/// write failure.
void write_checkpoint(std::ostream& out, const std::vector<Param*>& params,
                      const std::string& scenario = "",
                      const std::string& model = "");

/// Streaming load into `params`: every record must match the corresponding
/// parameter's name, rank and shape (kMismatch otherwise), payload CRCs
/// must hold (kCorrupt), and the file must contain exactly params.size()
/// tensors. The load is atomic: every record (CRCs included) is staged and
/// validated before any parameter is touched, so on any throw the model is
/// exactly as it was — a live compiled serving session keeps serving its
/// old weights/planes after a failed load. On success each restored
/// parameter's version is bumped so per-layer quantized weight caches and
/// compiled planes (CompiledModel::refresh) rebuild.
CheckpointMeta read_checkpoint(std::istream& in,
                               const std::vector<Param*>& params);

/// File-level convenience wrappers over the stream API. The Sequential
/// overloads walk the model's parameters in forward order
/// (collect_params) — the canonical save/load path for examples, the
/// serve daemon, and the C API.
void save_checkpoint(const std::string& path, Sequential& model,
                     const std::string& scenario = "",
                     const std::string& model_tag = "");
CheckpointMeta load_checkpoint(const std::string& path, Sequential& model);
void save_checkpoint(const std::string& path,
                     const std::vector<Param*>& params,
                     const std::string& scenario = "",
                     const std::string& model_tag = "");
CheckpointMeta load_checkpoint(const std::string& path,
                               const std::vector<Param*>& params);

/// Header-only probe: opens `path`, parses and validates the header, and
/// returns its identity fields without touching tensor data — how the
/// serve daemon decides which architecture/scenario to build before
/// loading weights.
CheckpointMeta read_checkpoint_meta(const std::string& path);

/// In-memory round trip (tests, the trainer's best-epoch tracking): the
/// same format as the file functions, in a byte buffer.
std::vector<char> serialize_params(const std::vector<Param*>& params,
                                   const std::string& scenario = "",
                                   const std::string& model = "");
CheckpointMeta deserialize_params(const std::vector<char>& bytes,
                                  const std::vector<Param*>& params);

}  // namespace srmac
