#pragma once

#include <cstdint>

#include "rng/random_source.hpp"

namespace srmac {

/// Galois linear feedback shift register, the paper's PRNG (Sec. III-c).
///
/// The register is `width` bits (4..64). On each step, the register shifts
/// right by one; if the bit shifted out is 1, the feedback taps are XORed in.
/// Taps are chosen from a table of maximal-length polynomials so the sequence
/// period is 2^width - 1 (the all-zero state is unreachable and rejected).
///
/// In the paper's MAC the LFSR runs in parallel and asynchronously with the
/// multiplier; one fresh r-bit word is consumed per accumulation. We model
/// that by stepping the register once per draw and returning the low r bits.
class GaloisLfsr final : public RandomSource {
 public:
  /// `width` in [4, 64]; `seed` must be nonzero in the low `width` bits.
  explicit GaloisLfsr(int width, uint64_t seed = 0xACE1u);

  /// One register step (one shift with conditional tap XOR).
  void step();

  /// Steps the register and returns its low `bits` bits.
  uint64_t draw(int bits) override;

  /// Bulk draw without per-word virtual dispatch: identical word sequence
  /// to repeated draw(bits) calls (one register step per word).
  void fill(std::span<uint64_t> out, int bits) override;

  /// Re-seeds the register in place (same nonzero-state rule as the
  /// constructor), so one LFSR instance can serve many GEMM elements.
  void reseed(uint64_t seed) {
    state_ = seed & mask_;
    if (state_ == 0) state_ = 1;
  }

  uint64_t state() const { return state_; }
  int width() const { return width_; }
  /// Maximal-length feedback mask for `width` (taps as a bit mask).
  static uint64_t taps_for_width(int width);

 private:
  int width_;
  uint64_t mask_;
  uint64_t taps_;
  uint64_t state_;
};

}  // namespace srmac
