#include "rng/lfsr.hpp"

#include <stdexcept>

namespace srmac {

// Maximal-length polynomial tap masks, one per register width. Entry w holds
// the Galois feedback mask (bit i set means tap after stage i). Standard
// table (Xilinx XAPP052 / Wikipedia LFSR polynomial listings).
uint64_t GaloisLfsr::taps_for_width(int width) {
  switch (width) {
    case 4:  return 0xCull;                  // x^4 + x^3 + 1
    case 5:  return 0x14ull;                 // x^5 + x^3 + 1
    case 6:  return 0x30ull;                 // x^6 + x^5 + 1
    case 7:  return 0x60ull;                 // x^7 + x^6 + 1
    case 8:  return 0xB8ull;                 // x^8 + x^6 + x^5 + x^4 + 1
    case 9:  return 0x110ull;                // x^9 + x^5 + 1
    case 10: return 0x240ull;                // x^10 + x^7 + 1
    case 11: return 0x500ull;                // x^11 + x^9 + 1
    case 12: return 0xE08ull;                // x^12 + x^11 + x^10 + x^4 + 1
    case 13: return 0x1C80ull;               // x^13 + x^12 + x^11 + x^8 + 1
    case 14: return 0x3802ull;               // x^14 + x^13 + x^12 + x^2 + 1
    case 15: return 0x6000ull;               // x^15 + x^14 + 1
    case 16: return 0xD008ull;               // x^16 + x^15 + x^13 + x^4 + 1
    case 17: return 0x12000ull;              // x^17 + x^14 + 1
    case 18: return 0x20400ull;              // x^18 + x^11 + 1
    case 19: return 0x72000ull;              // x^19 + x^18 + x^17 + x^14 + 1
    case 20: return 0x90000ull;              // x^20 + x^17 + 1
    case 24: return 0xE10000ull;             // x^24 + x^23 + x^22 + x^17 + 1
    case 27: return 0x4E00000ull;            // x^27+x^26+x^25+x^22+1
    case 32: return 0xB4BCD35Cull;
    case 64: return 0xB45A9E3BA3C3A95Eull & ~0ull;  // fallthrough-quality mask
    default: break;
  }
  // Generic fallback: use the width-8 style dense mask shifted into place.
  // Not guaranteed maximal-length, but full-period behaviour is only needed
  // for the tabulated widths used in the paper (4..27).
  return (0xB8ull << (width - 8)) & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
}

GaloisLfsr::GaloisLfsr(int width, uint64_t seed) : width_(width) {
  if (width < 4 || width > 64) throw std::invalid_argument("LFSR width must be in [4,64]");
  mask_ = (width == 64) ? ~0ull : ((1ull << width) - 1);
  taps_ = taps_for_width(width) & mask_;
  state_ = seed & mask_;
  if (state_ == 0) state_ = 1;  // all-zero is the lock-up state
}

void GaloisLfsr::step() {
  const uint64_t lsb = state_ & 1ull;
  state_ >>= 1;
  if (lsb) state_ ^= taps_;
}

uint64_t GaloisLfsr::draw(int bits) {
  step();
  if (bits <= 0) return 0;
  if (bits >= 64) return state_;
  return state_ & ((1ull << bits) - 1);
}

void GaloisLfsr::fill(std::span<uint64_t> out, int bits) {
  const uint64_t bmask =
      bits <= 0 ? 0 : (bits >= 64 ? ~0ull : ((1ull << bits) - 1));
  uint64_t s = state_;
  const uint64_t taps = taps_;
  for (auto& w : out) {
    const uint64_t lsb = s & 1ull;
    s >>= 1;
    if (lsb) s ^= taps;
    w = s & bmask;
  }
  state_ = s;
}

}  // namespace srmac
