#include "rng/xoshiro.hpp"

#include <cmath>

namespace srmac {

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, the recommended seeder for xoshiro state.
inline uint64_t splitmix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Xoshiro256::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256::draw(int bits) {
  if (bits <= 0) return 0;
  const uint64_t v = next();
  return bits >= 64 ? v : (v >> (64 - bits));
}

void Xoshiro256::fill(std::span<uint64_t> out, int bits) {
  if (bits <= 0) {
    for (auto& w : out) w = 0;
    return;
  }
  const int shift = bits >= 64 ? 0 : 64 - bits;
  for (auto& w : out) w = next() >> shift;
}

double Xoshiro256::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Xoshiro256::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform(), u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double rad = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = rad * std::sin(2.0 * M_PI * u2);
  have_cached_normal_ = true;
  return rad * std::cos(2.0 * M_PI * u2);
}

uint64_t Xoshiro256::below(uint64_t n) {
  if (n == 0) return 0;
  // Rejection-free modulo is fine for our non-cryptographic uses.
  return next() % n;
}

}  // namespace srmac
