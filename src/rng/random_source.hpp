#pragma once

#include <cstdint>
#include <span>

namespace srmac {

/// Abstract source of uniform random bits, consumed by stochastic rounding.
///
/// `draw(n)` returns n i.i.d. uniform bits in the low bits of the result
/// (0 <= n <= 64). Hardware models use an r-bit Galois LFSR; software golden
/// models use a 64-bit xoshiro generator.
class RandomSource {
 public:
  virtual ~RandomSource() = default;
  virtual uint64_t draw(int bits) = 0;

  /// Bulk draw: fills `out` with one `bits`-wide word per element, exactly
  /// as repeated draw(bits) calls would. Concrete generators override this
  /// to amortize the virtual dispatch across a whole accumulation tile.
  virtual void fill(std::span<uint64_t> out, int bits) {
    for (auto& w : out) w = draw(bits);
  }
};

/// A deterministic source that replays a fixed word; used by tests to drive
/// both the lazy and eager adders with the *same* random value.
class FixedSource final : public RandomSource {
 public:
  explicit FixedSource(uint64_t word) : word_(word) {}
  uint64_t draw(int bits) override {
    return bits >= 64 ? word_ : (word_ & ((1ull << bits) - 1));
  }
  void set(uint64_t word) { word_ = word; }

 private:
  uint64_t word_;
};

}  // namespace srmac
