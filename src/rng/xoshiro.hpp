#pragma once

#include <cstdint>

#include "rng/random_source.hpp"

namespace srmac {

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
///
/// Used as the software-side random source for golden stochastic rounding,
/// dataset generation and weight initialization. Not part of the hardware
/// model (the hardware uses GaloisLfsr); chosen so that statistical tests on
/// SR unbiasedness are not confounded by PRNG structure.
class Xoshiro256 final : public RandomSource {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t next();
  uint64_t draw(int bits) override;
  void fill(std::span<uint64_t> out, int bits) override;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box–Muller.
  double normal();
  /// Uniform integer in [0, n).
  uint64_t below(uint64_t n);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace srmac
