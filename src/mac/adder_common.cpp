#include "mac/adder_common.hpp"

#include <cassert>

namespace srmac {

PreparedAdd prepare_add(const FpFormat& fmt, uint32_t a, uint32_t b) {
  PreparedAdd p;
  const Unpacked ua = decode(fmt, a), ub = decode(fmt, b);

  if (ua.cls == FpClass::kNaN || ub.cls == FpClass::kNaN) {
    p.special = true;
    p.special_bits = fmt.nan_bits();
    return p;
  }
  if (ua.cls == FpClass::kInf || ub.cls == FpClass::kInf) {
    p.special = true;
    if (ua.cls == FpClass::kInf && ub.cls == FpClass::kInf && ua.sign != ub.sign)
      p.special_bits = fmt.nan_bits();
    else
      p.special_bits = encode_inf(fmt, ua.cls == FpClass::kInf ? ua.sign : ub.sign);
    return p;
  }
  if (ua.cls == FpClass::kZero && ub.cls == FpClass::kZero) {
    p.special = true;
    p.special_bits = encode_zero(fmt, ua.sign && ub.sign);
    return p;
  }
  if (ua.cls == FpClass::kZero || ub.cls == FpClass::kZero) {
    // x + 0 is exact; return the nonzero operand, canonicalized through the
    // decoder so that flushed subnormals read back as zero.
    const Unpacked& u = ua.cls == FpClass::kZero ? ub : ua;
    p.special = true;
    if (u.exp >= fmt.emin())
      p.special_bits = encode_normal(fmt, u.sign, u.exp, u.sig);
    else  // subnormal passthrough (subnormals on, else it decoded as zero)
      p.special_bits = encode_subnormal(
          fmt, u.sign,
          static_cast<uint32_t>(u.sig >> (fmt.emin() - u.exp)));
    return p;
  }

  // Swap so |x| >= |y| (exponent first, significand as tiebreak).
  const bool swap = (ub.exp > ua.exp) || (ub.exp == ua.exp && ub.sig > ua.sig);
  const Unpacked& hi = swap ? ub : ua;
  const Unpacked& lo = swap ? ua : ub;
  p.sign = hi.sign;
  p.op = ua.sign != ub.sign;
  p.exp = hi.exp;
  p.x = hi.sig;
  p.y = lo.sig;
  p.d = hi.exp - lo.exp;
  return p;
}

namespace {

/// One rounding decision at an arbitrary cut: RN-even on (g, rest, lsb) or
/// the add-R-and-carry SR scheme on the top r fraction bits.
bool round_decision(uint64_t lsb, uint64_t frac64, bool sticky, bool rn_mode,
                    int r, uint64_t rand_word) {
  if (rn_mode) {
    const bool g = (frac64 >> 63) != 0;
    const bool rest = (frac64 << 1) != 0 || sticky;
    return g && (rest || (lsb & 1));
  }
  const uint64_t fr = r >= 64 ? frac64 : (frac64 >> (64 - r));
  const uint64_t rmask = r >= 64 ? ~0ull : ((1ull << r) - 1);
  return (fr + (rand_word & rmask)) >= (1ull << r);
}

}  // namespace

uint32_t pack_round(const FpFormat& fmt, bool sign, int exp, uint64_t sig,
                    uint64_t frac64, bool sticky, bool rn_mode, int r,
                    uint64_t rand_word, bool already_rounded,
                    AdderTrace* trace) {
  const int p = fmt.precision();
  assert((sig >> (p - 1)) == 1 && "pack_round expects a normalized p-bit significand");

  if (exp < fmt.emin()) {
    if (!fmt.subnormals) {
      if (trace) trace->subnormal_out = true;
      return encode_zero(fmt, sign);
    }
    if (trace) trace->subnormal_out = true;
    // Denormalize: shift the cut right by sh, folding the displaced bits
    // into the fraction, then round once at the subnormal ULP. (The eager
    // adder also routes through here: a denormalized cut invalidates its
    // pre-aligned rounding, so the full random word is re-applied.)
    const int sh = fmt.emin() - exp;
    uint64_t kept;
    if (sh >= 64) {
      kept = 0;
      sticky |= sig != 0 || frac64 != 0;
      frac64 = 0;
    } else {
      // kept = sig >> sh (zero when sh >= p); the displaced low bits become
      // the new fraction. Pre-existing fraction bits sit deeper than the new
      // 64-bit window can express exactly; they fold into sticky (harmless
      // for RN, and below the top-r field for every r <= 64 - sh we use).
      kept = sig >> sh;
      sticky |= frac64 != 0;
      frac64 = sig << (64 - sh);
    }
    const bool up =
        round_decision(kept, frac64, sticky, rn_mode, r, rand_word);
    uint64_t res = kept + (up ? 1u : 0u);
    if (trace) {
      trace->round_up = up;
      trace->exact = frac64 == 0 && !sticky;
    }
    if (res == 0) return encode_zero(fmt, sign);
    if (res >> fmt.man_bits) return encode_normal(fmt, sign, fmt.emin(), res);
    return encode_subnormal(fmt, sign, static_cast<uint32_t>(res));
  }

  if (!already_rounded) {
    const bool up = round_decision(sig, frac64, sticky, rn_mode, r, rand_word);
    if (trace) {
      trace->round_up = up;
      trace->exact = frac64 == 0 && !sticky;
      trace->f_r = rn_mode || r >= 64 ? frac64 : (frac64 >> (64 - r));
    }
    sig += up ? 1u : 0u;
    if (sig >> p) {  // rounded into the next binade
      sig >>= 1;
      exp += 1;
    }
  }
  if (exp > fmt.emax()) return encode_inf(fmt, sign);
  return encode_normal(fmt, sign, exp, sig);
}

}  // namespace srmac
