#include "mac/adder_common.hpp"

namespace srmac {

PreparedAdd prepare_add(const FpFormat& fmt, uint32_t a, uint32_t b) {
  const PreparedAddU u = prepare_add_u(fmt, decode(fmt, a), decode(fmt, b));
  PreparedAdd p;
  if (u.special) {
    p.special = true;
    p.special_bits = encode_unpacked(fmt, u.special_val);
    return p;
  }
  p.sign = u.sign;
  p.op = u.op;
  p.exp = u.exp;
  p.x = u.x;
  p.y = u.y;
  p.d = u.d;
  return p;
}

uint32_t pack_round(const FpFormat& fmt, bool sign, int exp, uint64_t sig,
                    uint64_t frac64, bool sticky, bool rn_mode, int r,
                    uint64_t rand_word, bool already_rounded,
                    AdderTrace* trace) {
  return encode_unpacked(
      fmt, round_unpacked(fmt, sign, exp, sig, frac64, sticky, rn_mode, r,
                          rand_word, already_rounded, trace));
}

}  // namespace srmac
