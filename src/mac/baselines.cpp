#include "mac/baselines.hpp"

#include <cassert>
#include <cmath>

#include "fpemu/softfloat.hpp"
#include "fpemu/value.hpp"
#include "mac/multiplier.hpp"

namespace srmac {

FixedPointMac::FixedPointMac(const Config& cfg, RandomSource& rng)
    : cfg_(cfg), rng_(rng) {
  assert(cfg.total_bits >= 2 && cfg.total_bits <= 63);
  assert(cfg.frac_bits >= 0 && cfg.frac_bits < cfg.total_bits);
  max_ = (int64_t{1} << (cfg.total_bits - 1)) - 1;
  min_ = -(int64_t{1} << (cfg.total_bits - 1));
}

int64_t FixedPointMac::step(uint32_t a, uint32_t b) {
  const FpFormat prod_fmt = product_format(cfg_.mul_fmt);
  const uint32_t p = multiply_exact(cfg_.mul_fmt, a, b);
  const Unpacked u = decode(prod_fmt, p);
  if (u.cls == FpClass::kZero) return acc_;
  // NaN/Inf have no fixed-point image; saturate (the hardware would flag).
  if (u.cls == FpClass::kNaN || u.cls == FpClass::kInf) {
    saturated_ = true;
    acc_ = u.sign ? min_ : max_;
    return acc_;
  }

  // The product magnitude is sig * 2^(exp - (sig_bits-1)); on the grid of
  // 2^-F that is sig shifted by sh = exp - sig_bits + 1 + F.
  const int sh = u.exp - (u.sig_bits - 1) + cfg_.frac_bits;
  int64_t q;
  if (sh >= 0) {
    // Losslessly representable unless it overflows the register (handled
    // by the saturating add below).
    q = sh < 62 ? static_cast<int64_t>(u.sig) << sh : max_;
  } else {
    const int drop = -sh;
    if (drop >= 63) {
      q = 0;
      // Deep underflow: even SR cannot see the value (its top random
      // window is above the product). Matches truncation hardware.
    } else {
      const uint64_t kept = u.sig >> drop;
      const uint64_t frac = u.sig & ((uint64_t{1} << drop) - 1);
      uint64_t up = 0;
      switch (cfg_.rounding) {
        case FixedRounding::kTruncate:
          break;
        case FixedRounding::kRoundNearest:
          up = (frac >> (drop - 1)) & 1;
          break;
        case FixedRounding::kStochastic: {
          // Add r random bits aligned below the LSB; carry rounds up
          // (same Fig. 1 scheme as the FP unit, on the integer grid).
          const int r = cfg_.random_bits;
          const uint64_t field =
              drop >= r ? (frac >> (drop - r))
                        : (frac << (r - drop));
          up = (field + rng_.draw(r)) >> r;
          break;
        }
      }
      q = static_cast<int64_t>(kept + up);
    }
  }
  if (u.sign) q = -q;

  // Saturating accumulate.
  int64_t next = acc_ + q;
  if (next > max_) {
    next = max_;
    saturated_ = true;
  } else if (next < min_) {
    next = min_;
    saturated_ = true;
  }
  acc_ = next;
  return acc_;
}

double FixedPointMac::value() const {
  return static_cast<double>(acc_) / std::ldexp(1.0, cfg_.frac_bits);
}

void KahanAccumulator::add(uint32_t addend_bits) {
  // y = x - comp; t = sum + y; comp = (t - sum) - y; sum = t.
  const uint32_t y = SoftFloat::sub(fmt_, addend_bits, comp_, RoundingMode::kNearestEven);
  const uint32_t t = SoftFloat::add(fmt_, sum_, y, RoundingMode::kNearestEven);
  const uint32_t d = SoftFloat::sub(fmt_, t, sum_, RoundingMode::kNearestEven);
  comp_ = SoftFloat::sub(fmt_, d, y, RoundingMode::kNearestEven);
  sum_ = t;
}

void KahanAccumulator::add_value(double x) {
  add(SoftFloat::from_double(fmt_, x));
}

double KahanAccumulator::value() const {
  return SoftFloat::to_double(fmt_, sum_);
}

double dot_fixed(const FixedPointMac::Config& cfg, const float* a,
                 const float* b, int n, RandomSource& rng, bool* saturated) {
  FixedPointMac mac(cfg, rng);
  for (int i = 0; i < n; ++i) {
    const uint32_t qa = SoftFloat::from_double(cfg.mul_fmt, a[i]);
    const uint32_t qb = SoftFloat::from_double(cfg.mul_fmt, b[i]);
    mac.step(qa, qb);
  }
  if (saturated) *saturated = mac.saturated();
  return mac.value();
}

double dot_kahan(const FpFormat& mul_fmt, const FpFormat& acc_fmt,
                 const float* a, const float* b, int n) {
  const FpFormat prod_fmt = product_format(mul_fmt);
  KahanAccumulator acc(acc_fmt);
  for (int i = 0; i < n; ++i) {
    const uint32_t qa = SoftFloat::from_double(mul_fmt, a[i]);
    const uint32_t qb = SoftFloat::from_double(mul_fmt, b[i]);
    const uint32_t p = multiply_exact(mul_fmt, qa, qb);
    // Convert the exact product into the accumulator format (RN) and feed
    // the compensated chain.
    acc.add(SoftFloat::convert(prod_fmt, p, acc_fmt, RoundingMode::kNearestEven));
  }
  return acc.value();
}

}  // namespace srmac
