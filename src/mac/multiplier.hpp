#pragma once

#include <cstdint>

#include "fpemu/format.hpp"

namespace srmac {

/// The paper's exact multiplier (Sec. III-a).
///
/// Multiplies two values in format `in` (p_m-bit precision, E_m exponent
/// bits) and returns the *exact* product encoded in `product_format(in)`
/// (p_a = 2*p_m precision, E_a = E_m + 1 exponent bits). Taking the full
/// product eliminates the rounding stage; an E5M2 multiplier outputs E6M5.
///
/// With `in.subnormals == false`, subnormal inputs are flushed to zero.
/// With subnormals on, the product of two finite inputs is always exactly
/// representable in the output format (the output's subnormal range is deep
/// enough; see the analysis in DESIGN.md / tests).
uint32_t multiply_exact(const FpFormat& in, uint32_t a, uint32_t b);

}  // namespace srmac
