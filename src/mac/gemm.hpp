#pragma once

#include <cstdint>

#include "mac/mac_config.hpp"

namespace srmac {

/// Bit-accurate GEMM: C[MxN] = A[MxK] * B[KxN] (+ C when `accumulate`),
/// row-major with leading dimensions. Every output element is produced by
/// one MAC-unit accumulation chain over k, exactly as in the paper's
/// software-emulated training flow: A and B are quantized to cfg.mul_fmt
/// (RN), the products are exact, and each addition rounds in cfg.acc_fmt
/// through the configured adder. The per-element LFSR seed is derived from
/// (seed, i, j) so results are reproducible and independent of threading.
///
/// The final accumulator is read back as float into C (exact: every
/// accumulator format here is narrower than binary32's significand).
///
/// This entry point runs the fused emulation engine: cache-blocked loops
/// over packed operand panels, a decoded accumulator that is packed only at
/// chain boundaries, a process-wide product table for FP8-class multiplier
/// formats, bulk LFSR draws, and the persistent thread pool. It is
/// bit-identical to gemm_mac_reference (asserted by tests/mac/
/// test_gemm_fastpath.cpp); see docs/PERF.md for the architecture.
void gemm_mac(const MacConfig& cfg, int M, int N, int K, const float* A,
              int lda, const float* B, int ldb, float* C, int ldc,
              bool accumulate = false, uint64_t seed = kDefaultSeed,
              int threads = 0);

/// gemm_mac on operands already quantized to cfg.mul_fmt bit patterns
/// (row-major uint32 with leading dimensions). This is the layer the nn
/// modules call with their cached weight planes so weights are not
/// requantized on every forward/backward GEMM.
void gemm_mac_bits(const MacConfig& cfg, int M, int N, int K,
                   const uint32_t* Aq, int lda, const uint32_t* Bq, int ldb,
                   float* C, int ldc, bool accumulate = false,
                   uint64_t seed = kDefaultSeed, int threads = 0);

/// The seed implementation: one MacUnit per output element stepping through
/// packed bits, kept as the golden reference the fused engine is verified
/// against (and as the baseline of bench_gemm_throughput).
void gemm_mac_reference(const MacConfig& cfg, int M, int N, int K,
                        const float* A, int lda, const float* B, int ldb,
                        float* C, int ldc, bool accumulate = false,
                        uint64_t seed = kDefaultSeed, int threads = 0);

/// Float reference GEMM with the same interface (the FP32 baseline).
void gemm_ref(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, bool accumulate = false,
              int threads = 0);

/// Quantizes a row-major float matrix into `fmt` bit patterns (RN), rows
/// split across the thread pool — the operand-quantization step of
/// gemm_mac, exposed so callers preparing inputs for gemm_mac_bits (e.g.
/// the layers' activation panels) share it.
void gemm_quantize(const FpFormat& fmt, int rows, int cols, const float* src,
                   int ld, uint32_t* dst, int threads = 0);

}  // namespace srmac
