#pragma once

#include <cstdint>

#include "mac/mac_config.hpp"

namespace srmac {

/// Bit-accurate GEMM: C[MxN] = A[MxK] * B[KxN] (+ C when `accumulate`),
/// row-major with leading dimensions. Every output element is produced by
/// one MAC-unit accumulation chain over k, exactly as in the paper's
/// software-emulated training flow: A and B are quantized to cfg.mul_fmt
/// (RN), the products are exact, and each addition rounds in cfg.acc_fmt
/// through the configured adder. The per-element LFSR seed is derived from
/// (seed, i, j) so results are reproducible and independent of threading.
///
/// The final accumulator is read back as float into C (exact: every
/// accumulator format here is narrower than binary32's significand).
void gemm_mac(const MacConfig& cfg, int M, int N, int K, const float* A,
              int lda, const float* B, int ldb, float* C, int ldc,
              bool accumulate = false, uint64_t seed = 0x5EED5EEDull,
              int threads = 0);

/// Float reference GEMM with the same interface (the FP32 baseline).
void gemm_ref(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, bool accumulate = false,
              int threads = 0);

}  // namespace srmac
