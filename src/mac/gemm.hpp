#pragma once

#include <cstdint>
#include <vector>

#include "mac/mac_config.hpp"

namespace srmac {

/// One B operand packed into the group-interleaved panel layout the fused
/// kernel consumes (full groups of `group` columns interleaved as
/// `bt[g][k*group + l]`, the N % group remainder columns contiguous in k).
/// Built once by gemm_pack_b and reusable across every GEMM that multiplies
/// against the same weight plane — the "batched" backend packs each unique
/// plane once per batch and shares it across problems.
struct PackedBPanels {
  int K = 0;
  int N = 0;
  int group = 0;  ///< FusedMacKernel::group_width() at pack time
  std::vector<uint32_t> bt;
};

/// Packs quantized B bits (row-major KxN with leading dimension ldb) into
/// the panel layout for `cfg` (the group width is a pure function of the
/// normalized config and the host ISA).
PackedBPanels gemm_pack_b(const MacConfig& cfg, int K, int N,
                          const uint32_t* Bq, int ldb, int threads = 0);

/// gemm_pack_b into caller-owned storage: `out->bt` is resized in place, so
/// a panel buffer reserved once can absorb every repack without allocating —
/// the steady-state path of the compiled serve executor, which packs each
/// request's im2col panel into the same reused panels (docs/COMPILER.md).
void gemm_pack_b_into(const MacConfig& cfg, int K, int N, const uint32_t* Bq,
                      int ldb, PackedBPanels* out, int threads = 0);

/// gemm_mac_bits with B already packed by gemm_pack_b under the same
/// (normalized) cfg. This is the inner entry point of both gemm_mac_bits
/// and the batched backend's per-problem loop.
///
/// `seed_row_period` / `seed_col_period`: when non-zero, the per-element
/// LFSR seed derives from (i % row_period, j % col_period) instead of
/// (i, j). This is the grouped same-shape execution contract
/// (docs/SERVING.md): several independent problems concatenated along one
/// axis of a single wide GEMM reproduce, element for element, the seeds
/// their standalone dispatches would have used — col_period = L makes
/// column s*L+t of a B-concatenated panel seed as column t, row_period = 1
/// makes every row of an A-stacked panel seed as row 0. 0 (the default)
/// means the identity mapping; results are unchanged.
void gemm_mac_bits_packed(const MacConfig& cfg, int M, int N, int K,
                          const uint32_t* Aq, int lda, const PackedBPanels& B,
                          float* C, int ldc, bool accumulate = false,
                          uint64_t seed = kDefaultSeed, int threads = 0,
                          int seed_row_period = 0, int seed_col_period = 0);

/// Bit-accurate GEMM: C[MxN] = A[MxK] * B[KxN] (+ C when `accumulate`),
/// row-major with leading dimensions. Every output element is produced by
/// one MAC-unit accumulation chain over k, exactly as in the paper's
/// software-emulated training flow: A and B are quantized to cfg.mul_fmt
/// (RN), the products are exact, and each addition rounds in cfg.acc_fmt
/// through the configured adder. The per-element LFSR seed is derived from
/// (seed, i, j) so results are reproducible and independent of threading.
///
/// The final accumulator is read back as float into C (exact: every
/// accumulator format here is narrower than binary32's significand).
///
/// This entry point runs the fused emulation engine: cache-blocked loops
/// over packed operand panels, a decoded accumulator that is packed only at
/// chain boundaries, a process-wide product table for FP8-class multiplier
/// formats, bulk LFSR draws, and the persistent thread pool. It is
/// bit-identical to gemm_mac_reference (asserted by tests/mac/
/// test_gemm_fastpath.cpp); see docs/PERF.md for the architecture.
void gemm_mac(const MacConfig& cfg, int M, int N, int K, const float* A,
              int lda, const float* B, int ldb, float* C, int ldc,
              bool accumulate = false, uint64_t seed = kDefaultSeed,
              int threads = 0, int seed_row_period = 0,
              int seed_col_period = 0);

/// gemm_mac on operands already quantized to cfg.mul_fmt bit patterns
/// (row-major uint32 with leading dimensions). This is the layer the nn
/// modules call with their cached weight planes so weights are not
/// requantized on every forward/backward GEMM.
void gemm_mac_bits(const MacConfig& cfg, int M, int N, int K,
                   const uint32_t* Aq, int lda, const uint32_t* Bq, int ldb,
                   float* C, int ldc, bool accumulate = false,
                   uint64_t seed = kDefaultSeed, int threads = 0,
                   int seed_row_period = 0, int seed_col_period = 0);

/// The seed implementation: one MacUnit per output element stepping through
/// packed bits, kept as the golden reference the fused engine is verified
/// against (and as the baseline of bench_gemm_throughput).
void gemm_mac_reference(const MacConfig& cfg, int M, int N, int K,
                        const float* A, int lda, const float* B, int ldb,
                        float* C, int ldc, bool accumulate = false,
                        uint64_t seed = kDefaultSeed, int threads = 0,
                        int seed_row_period = 0, int seed_col_period = 0);

/// Float reference GEMM with the same interface (the FP32 baseline).
void gemm_ref(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, bool accumulate = false,
              int threads = 0);

/// Quantizes a row-major float matrix into `fmt` bit patterns (RN), rows
/// split across the thread pool — the operand-quantization step of
/// gemm_mac, exposed so callers preparing inputs for gemm_mac_bits (e.g.
/// the layers' activation panels) share it.
void gemm_quantize(const FpFormat& fmt, int rows, int cols, const float* src,
                   int ld, uint32_t* dst, int threads = 0);

/// Inverse of gemm_quantize for already-quantized planes: decodes `fmt`
/// bit patterns back to floats (dst is dense rows x cols). Lossless round
/// trip — requantizing a representable value returns the same bits — so
/// this is the fallback feeding pre-quantized operands to backends without
/// native gemm_bits support.
void gemm_dequantize(const FpFormat& fmt, int rows, int cols,
                     const uint32_t* src, int ld, float* dst);

}  // namespace srmac
