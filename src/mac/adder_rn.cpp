#include "mac/adder_rn.hpp"

namespace srmac {

uint32_t add_rn(const FpFormat& fmt, uint32_t a, uint32_t b,
                AdderTrace* trace) {
  return encode_unpacked(fmt,
                         add_rn_u(fmt, decode(fmt, a), decode(fmt, b), trace));
}

}  // namespace srmac
