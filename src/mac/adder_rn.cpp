#include "mac/adder_rn.hpp"

#include <cassert>

namespace srmac {

namespace {
inline uint64_t ones(int n) { return n <= 0 ? 0 : ((n >= 64) ? ~0ull : ((1ull << n) - 1)); }
}  // namespace

uint32_t add_rn(const FpFormat& fmt, uint32_t a, uint32_t b, AdderTrace* trace) {
  const PreparedAdd pr = prepare_add(fmt, a, b);
  if (pr.special) {
    if (trace) trace->special = true;
    return pr.special_bits;
  }
  const int p = fmt.precision();
  constexpr int K = 2;  // guard + round extension bits

  if (trace) {
    trace->far_path = pr.d > 1;
    trace->effective_sub = pr.op;
  }

  // Alignment with bounded shifter: keep K extension bits, OR the rest into
  // the sticky bit (computed during stages (ii)-(iii) per the paper).
  const uint64_t A = pr.x << K;
  uint64_t B;
  bool sticky;
  if (pr.d >= p + K) {
    B = 0;
    sticky = pr.y != 0;
  } else {
    const uint64_t yk = pr.y << K;
    B = yk >> pr.d;
    sticky = (yk & ones(pr.d)) != 0;
  }

  // Single shared adder/subtractor. When sticky bits were dropped from the
  // subtrahend the window value underestimates it; borrow one window ULP so
  // the retained difference is a truncation of the exact one.
  uint64_t S;
  if (pr.op) {
    S = A - B - (sticky ? 1 : 0);
  } else {
    S = A + B;
  }
  if (S == 0) {
    assert(!sticky);
    return encode_zero(fmt, false);  // exact cancellation gives +0
  }

  const int msb = 63 - __builtin_clzll(S);
  if (trace) {
    trace->carry_out = !pr.op && msb == p + K;
    trace->norm_shift = (p + K - 1) - msb;
  }
  // Normalize: right shift when the sum grew past p bits, left shift after
  // deep cancellation (LZD path).
  const int fw = msb - (p - 1);  // fraction width (negative: left shift)
  const uint64_t sig_p = fw >= 0 ? (S >> fw) : (S << -fw);
  const uint64_t frac64 = fw >= 1 ? (S << (64 - fw)) : 0;
  const int exp_z = pr.exp + (msb - (p + K - 1));

  return pack_round(fmt, pr.sign, exp_z, sig_p, frac64, sticky,
                    /*rn_mode=*/true, /*r=*/0, /*rand_word=*/0,
                    /*already_rounded=*/false, trace);
}

}  // namespace srmac
