#pragma once

#include <cstdint>

#include "mac/adder_common.hpp"

namespace srmac {

/// Floating-point adder with *lazy* stochastic rounding (paper Fig. 3a).
///
/// The datapath matches add_rn up to normalization, except that the sticky /
/// guard / round computation is replaced by a bounded r-bit window of the
/// shifted-out fraction (plain truncation beyond it, per [5, Sec. 7.3]).
/// After normalization the top r discarded fraction bits are added to the
/// r-bit random word; a carry out of that addition rounds the result up.
/// This is the reference SR behaviour the eager design is compared against;
/// it realizes SR with probability floor(2^r * eps)/2^r (Eq. (2) discrete).
///
/// Contract:
///  * Operand packing — `a` and `b` are bit patterns in `fmt`; the return
///    value is the packed, stochastically rounded sum in the same format
///    (specials as in add_rn: canonical NaN, Inf propagation, +0 on exact
///    cancellation).
///  * Random bits — exactly the low r bits of `rand_word` are consumed,
///    1 <= r <= 32, all of them at the single post-normalization rounding
///    cut; higher bits are ignored. Exposing the word (rather than a
///    RandomSource) lets the validation harness drive lazy and eager with
///    the same randomness — under an identical word the two designs are
///    bit-identical (the paper's equivalence claim).
///  * Trace — as in add_rn; `f_r` holds the r-bit field the random word was
///    added to, `round_up` whether that addition carried.
uint32_t add_lazy_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                     uint64_t rand_word, AdderTrace* trace = nullptr);

/// Convenience overload drawing one word from a RandomSource.
uint32_t add_lazy_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                     RandomSource& rng, AdderTrace* trace = nullptr);

/// Decoded-operand core of add_lazy_sr: canonical decoded operands in,
/// canonical decoded result out (see add_rn_core for the decoded-form
/// contract; packing, random-bit consumption, and trace semantics as in
/// add_lazy_sr above). The AddParams carry the precomputed constants of
/// the (fmt, r) configuration.
inline Unpacked add_lazy_sr_core(const AddParams& ap, const Unpacked& ua,
                                 const Unpacked& ub, uint64_t rand_word,
                                 AdderTrace* trace = nullptr) {
  const FpFormat& fmt = ap.fmt;
  const int p = ap.p;
  const int r = ap.r;
  assert(r >= 1 && r <= 32);
  const PreparedAddU pr = prepare_add_u(fmt, ua, ub);
  if (pr.special) [[unlikely]] {
    if (trace) trace->special = true;
    return pr.special_val;
  }
  const int K = r;  // extension window: r bits below the result ULP

  if (trace) {
    trace->far_path = pr.d > 1;
    trace->effective_sub = pr.op;
  }

  // Alignment with an r-bit extension window; bits shifted beyond it are
  // truncated (the random addition *replaces* the sticky computation).
  const uint64_t A = pr.x << K;
  const uint64_t B = (pr.d < p + K) ? ((pr.y << K) >> pr.d) : 0;

  // Branch-free add/subtract select (A - B == A + ~B + 1): the op flag is
  // data-dependent and effectively random in accumulation chains.
  const uint64_t opmask = pr.op ? ~0ull : 0ull;
  const uint64_t S = A + (B ^ opmask) + (pr.op ? 1u : 0u);
  if (S == 0) [[unlikely]]
    return unpacked_zero(fmt, false);  // exact cancellation -> +0

  const int msb = 63 - __builtin_clzll(S);
  if (trace) {
    trace->carry_out = !pr.op && msb == p + K;
    trace->norm_shift = (p + K - 1) - msb;
  }
  // Normalize: right shift when the sum grew past p bits, left shift after
  // deep cancellation (LZD path).
  const int fw = msb - (p - 1);  // fraction width (negative: left shift)
  const uint64_t sig_p = fw >= 0 ? (S >> fw) : (S << -fw);
  const uint64_t frac64 = fw >= 1 ? (S << (64 - fw)) : 0;
  const int exp_z = pr.exp + (msb - (p + K - 1));

  return round_unpacked_core(ap, pr.sign, exp_z, sig_p, frac64,
                             /*sticky=*/false, /*rn_mode=*/false, rand_word,
                             /*already_rounded=*/false, trace);
}

/// Decoded-operand entry point: add_lazy_sr_core with the AddParams built
/// per call (same contract; use the _core form with precomputed params in
/// loops).
inline Unpacked add_lazy_sr_u(const FpFormat& fmt, const Unpacked& ua,
                              const Unpacked& ub, int r, uint64_t rand_word,
                              AdderTrace* trace = nullptr) {
  return add_lazy_sr_core(AddParams(fmt, r), ua, ub, rand_word, trace);
}

/// Out-of-line, by-value form for the eager adder's rare subnormal-cut
/// fallback. Taking the operands by value (and never inlining) keeps their
/// addresses from escaping at the call site, so the eager hot path can hold
/// its accumulator fully in registers.
[[gnu::noinline]] inline Unpacked add_lazy_sr_fallback(const AddParams& ap,
                                                       Unpacked ua,
                                                       Unpacked ub,
                                                       uint64_t rand_word,
                                                       AdderTrace* trace) {
  return add_lazy_sr_core(ap, ua, ub, rand_word, trace);
}

}  // namespace srmac
