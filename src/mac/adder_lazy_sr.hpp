#pragma once

#include <cstdint>

#include "mac/adder_common.hpp"

namespace srmac {

/// Floating-point adder with *lazy* stochastic rounding (paper Fig. 3a).
///
/// The datapath matches add_rn up to normalization, except that the sticky /
/// guard / round computation is replaced by a bounded r-bit window of the
/// shifted-out fraction (plain truncation beyond it, per [5, Sec. 7.3]).
/// After normalization the top r discarded fraction bits are added to the
/// r-bit random word; a carry out of that addition rounds the result up.
/// This is the reference SR behaviour the eager design is compared against;
/// it realizes SR with probability floor(2^r * eps)/2^r (Eq. (2) discrete).
///
/// `rand_word` is the r-bit LFSR draw; exposing it (rather than a
/// RandomSource) lets the validation harness drive lazy and eager with the
/// same randomness.
uint32_t add_lazy_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                     uint64_t rand_word, AdderTrace* trace = nullptr);

/// Convenience overload drawing from a RandomSource.
uint32_t add_lazy_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                     RandomSource& rng, AdderTrace* trace = nullptr);

}  // namespace srmac
