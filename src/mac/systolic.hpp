#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mac/mac_config.hpp"
#include "mac/mac_unit.hpp"
#include "tensor/tensor.hpp"

namespace srmac {

/// Functional, cycle-counted model of an output-stationary systolic array
/// of SR-MAC processing elements — the accelerator the paper names as
/// future work ("the hardware advantages of our proposed eager design hold
/// even greater potential within a systolic array-based accelerator").
///
/// Each PE holds one accumulator in cfg.acc_fmt and one MacUnit (exact
/// multiplier + the configured SR/RN adder + its own LFSR, seeded by grid
/// position). A GEMM C = A*B is executed in (rows x cols) output tiles:
/// operands stream in skewed order, each PE performs one MAC per cycle,
/// and the model counts cycles the way the dataflow would
/// (K + rows + cols - 2 per tile fill/drain plus the pipeline).
///
/// The arithmetic is bit-identical to driving each output element through
/// a standalone MacUnit with the same per-PE seed (tested), so the unit's
/// accuracy results transfer to the accelerator unchanged; what the array
/// adds is the cycle/area/energy economics, which `systolic_cost` in
/// hwcost/adder_designs.hpp-style units exposes at scale.
class SystolicArray {
 public:
  SystolicArray(const MacConfig& cfg, int rows, int cols,
                uint64_t seed = 0xA11CAull);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// C[MxN] = A[MxK] * B[KxN] (row-major, leading dims = logical dims).
  /// Returns the cycle count the dataflow would take.
  uint64_t gemm(int M, int N, int K, const float* A, const float* B,
                float* C);

  /// General form used by the engine's "systolic" backend: leading
  /// dimensions, accumulation into C (each PE's accumulator starts from the
  /// existing C value in acc_fmt, as in gemm_mac), and output tiles
  /// simulated in parallel on the shared thread pool (0 = hardware
  /// concurrency; per-PE seeds keep results thread-count invariant).
  uint64_t gemm(int M, int N, int K, const float* A, int lda, const float* B,
                int ldb, float* C, int ldc, bool accumulate, int threads);

  /// Tensor convenience wrapper.
  Tensor matmul(const Tensor& a, const Tensor& b, uint64_t* cycles = nullptr);

  /// Cycles a (M,N,K) GEMM takes on this array: per output tile the column
  /// fill + K-deep accumulation + drain, tiles processed back to back.
  uint64_t cycle_model(int M, int N, int K) const;

  /// Utilization of the last gemm() call: useful MACs / (PE * cycles).
  double last_utilization() const { return last_util_; }

 private:
  MacConfig cfg_;
  int rows_, cols_;
  uint64_t seed_;
  double last_util_ = 0.0;
};

}  // namespace srmac
