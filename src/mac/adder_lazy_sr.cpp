#include "mac/adder_lazy_sr.hpp"

namespace srmac {

uint32_t add_lazy_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                     uint64_t rand_word, AdderTrace* trace) {
  return encode_unpacked(fmt, add_lazy_sr_u(fmt, decode(fmt, a),
                                            decode(fmt, b), r, rand_word,
                                            trace));
}

uint32_t add_lazy_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                     RandomSource& rng, AdderTrace* trace) {
  return add_lazy_sr(fmt, a, b, r, rng.draw(r), trace);
}

}  // namespace srmac
