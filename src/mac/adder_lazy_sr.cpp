#include "mac/adder_lazy_sr.hpp"

#include <cassert>

namespace srmac {

namespace {
inline uint64_t ones(int n) { return n <= 0 ? 0 : ((n >= 64) ? ~0ull : ((1ull << n) - 1)); }
}  // namespace

uint32_t add_lazy_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                     uint64_t rand_word, AdderTrace* trace) {
  assert(r >= 1 && r <= 32);
  const PreparedAdd pr = prepare_add(fmt, a, b);
  if (pr.special) {
    if (trace) trace->special = true;
    return pr.special_bits;
  }
  const int p = fmt.precision();
  const int K = r;  // extension window: r bits below the result ULP

  if (trace) {
    trace->far_path = pr.d > 1;
    trace->effective_sub = pr.op;
  }

  // Alignment with an r-bit extension window; bits shifted beyond it are
  // truncated (the random addition *replaces* the sticky computation).
  const uint64_t A = pr.x << K;
  const uint64_t B = (pr.d < p + K) ? ((pr.y << K) >> pr.d) : 0;

  uint64_t S = pr.op ? (A - B) : (A + B);
  if (S == 0) return encode_zero(fmt, false);  // exact cancellation -> +0

  const int msb = 63 - __builtin_clzll(S);
  if (trace) {
    trace->carry_out = !pr.op && msb == p + K;
    trace->norm_shift = (p + K - 1) - msb;
  }
  // Normalize: right shift when the sum grew past p bits, left shift after
  // deep cancellation (LZD path).
  const int fw = msb - (p - 1);  // fraction width (negative: left shift)
  const uint64_t sig_p = fw >= 0 ? (S >> fw) : (S << -fw);
  const uint64_t frac64 = fw >= 1 ? (S << (64 - fw)) : 0;
  const int exp_z = pr.exp + (msb - (p + K - 1));

  return pack_round(fmt, pr.sign, exp_z, sig_p, frac64, /*sticky=*/false,
                    /*rn_mode=*/false, r, rand_word,
                    /*already_rounded=*/false, trace);
}

uint32_t add_lazy_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                     RandomSource& rng, AdderTrace* trace) {
  return add_lazy_sr(fmt, a, b, r, rng.draw(r), trace);
}

}  // namespace srmac
