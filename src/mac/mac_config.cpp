#include "mac/mac_config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <vector>

namespace srmac {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

}  // namespace

std::string adder_token(AdderKind k) {
  switch (k) {
    case AdderKind::kRoundNearest: return "rn";
    case AdderKind::kLazySR: return "lazy_sr";
    case AdderKind::kEagerSR: return "eager_sr";
  }
  return "?";
}

std::optional<AdderKind> parse_adder_token(std::string_view token) {
  const std::string t = lower(token);
  if (t == "rn") return AdderKind::kRoundNearest;
  if (t == "lazy_sr") return AdderKind::kLazySR;
  if (t == "eager_sr") return AdderKind::kEagerSR;
  return std::nullopt;
}

std::string MacConfig::to_string() const {
  char buf[96];
  // Emit the canonical r: the grammar has no sign and parse() saturates at
  // kRandomBitsCap, so emitting the raw value would break the round trip
  // for out-of-range configs.
  std::snprintf(buf, sizeof(buf), "%s:e%dm%d/e%dm%d:r=%d:sub%s",
                adder_token(adder).c_str(), mul_fmt.exp_bits, mul_fmt.man_bits,
                acc_fmt.exp_bits, acc_fmt.man_bits,
                std::clamp(random_bits, 0, kRandomBitsCap),
                subnormals ? "ON" : "OFF");
  return buf;
}

std::optional<MacConfig> MacConfig::parse(std::string_view spec,
                                          std::string* error) {
  auto err = [&](const std::string& msg) -> std::optional<MacConfig> {
    fail(error, msg + " in \"" + std::string(spec) + "\"");
    return std::nullopt;
  };

  const auto parts = split(spec, ':');
  if (parts.size() < 2) return err("expected adder:mulfmt/accfmt");

  MacConfig cfg;
  const auto adder = parse_adder_token(parts[0]);
  if (!adder) return err("unknown adder \"" + std::string(parts[0]) + "\"");
  cfg.adder = *adder;

  const auto fmts = split(parts[1], '/');
  if (fmts.size() != 2) return err("expected mulfmt/accfmt");
  const auto mul = FpFormat::parse(fmts[0]);
  if (!mul) return err("bad multiplier format \"" + std::string(fmts[0]) + "\"");
  const auto acc = FpFormat::parse(fmts[1]);
  if (!acc) return err("bad accumulator format \"" + std::string(fmts[1]) + "\"");
  cfg.mul_fmt = *mul;
  cfg.acc_fmt = *acc;

  bool have_r = false;
  for (size_t i = 2; i < parts.size(); ++i) {
    const std::string opt = lower(parts[i]);
    if (opt.rfind("r=", 0) == 0) {
      int r = 0;
      bool any = false;
      for (size_t j = 2; j < opt.size(); ++j) {
        if (!std::isdigit(static_cast<unsigned char>(opt[j])))
          return err("bad random-bit option \"" + std::string(parts[i]) + "\"");
        // Saturate: long digit runs must not overflow (normalized() clamps
        // the stored value into the adder's real range later).
        r = std::min(r * 10 + (opt[j] - '0'), MacConfig::kRandomBitsCap);
        any = true;
      }
      if (!any) return err("bad random-bit option \"" + std::string(parts[i]) + "\"");
      cfg.random_bits = r;
      have_r = true;
    } else if (opt == "subon") {
      cfg.subnormals = true;
    } else if (opt == "suboff") {
      cfg.subnormals = false;
    } else {
      return err("unknown option \"" + std::string(parts[i]) + "\"");
    }
  }
  if (!have_r) cfg.random_bits = default_random_bits(cfg.acc_fmt);
  cfg.mul_fmt.subnormals = cfg.subnormals;
  cfg.acc_fmt.subnormals = cfg.subnormals;
  return cfg;
}

}  // namespace srmac
