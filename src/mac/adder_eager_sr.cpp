#include "mac/adder_eager_sr.hpp"

#include <cassert>

#include "mac/adder_lazy_sr.hpp"

namespace srmac {

namespace {
inline uint64_t ones(int n) { return n <= 0 ? 0 : ((n >= 64) ? ~0ull : ((1ull << n) - 1)); }
}  // namespace

uint32_t add_eager_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                      uint64_t rand_word, AdderTrace* trace) {
  assert(r >= 3 && r <= 32);
  const PreparedAdd pr = prepare_add(fmt, a, b);
  if (pr.special) {
    if (trace) trace->special = true;
    return pr.special_bits;
  }
  const int p = fmt.precision();
  const bool far = pr.d > 1;
  const bool op = pr.op;

  if (trace) {
    trace->far_path = far;
    trace->effective_sub = op;
  }

  // --- (ii) significand alignment -----------------------------------------
  // Window of p+r positions: the p+1 MSBs feed the main adder, the r-1 bits
  // below (positions p+2 .. p+r) form the shifted-out field D.
  const uint64_t yk = (pr.d < p + r) ? ((pr.y << r) >> pr.d) : 0;
  const uint64_t Bhi = yk >> (r - 1);       // positions 1 .. p+1
  const uint64_t D = yk & ones(r - 1);      // positions p+2 .. p+r
  const bool dropped =                      // any operand bit truncated away
      (pr.d >= p + r) ? (pr.y != 0) : (((pr.y << r) & ones(pr.d)) != 0);

  const uint64_t R = rand_word & ones(r);
  const uint64_t R1 = (R >> (r - 1)) & 1;   // random MSB
  [[maybe_unused]] const uint64_t R2 = (R >> (r - 2)) & 1;  // case (a) only
  const uint64_t Rlow = R & ones(r - 2);    // the r-2 LSBs used eagerly

  // --- Sticky Round stage (Fig. 3b), far path only ------------------------
  // Adds the r-2 random LSBs to D starting at position p+3 of the eventual
  // carry-normalized result (R3 lands on D1); the effective-subtraction
  // complement and its +1 are fused into the same small adder. Only the two
  // MSBs of the partial sum survive: S'1 (carry into position p+1) and S'2.
  uint64_t S1, S2;
  if (far) {
    const uint64_t Dc = op ? (~D & ones(r - 1)) : D;
    const uint64_t u = Dc + (Rlow << 1) + (op ? 1 : 0);
    S1 = (u >> (r - 1)) & 1;
    S2 = (u >> (r - 2)) & 1;
  } else {
    // Close path: no shifted-out field; the two's-complement +1 goes
    // straight to the main adder carry-in and no random LSBs are consumed.
    S1 = op ? 1 : 0;
    S2 = 0;
  }
  // In this reconstruction S'1 rides the main adder carry-in, which puts the
  // stage-1 result at the correct weight on every normalization outcome, so
  // S'2 (the stage-1 sum MSB, which the paper's wiring consults explicitly)
  // is carried in the datapath but never gates the correction.
  (void)S2;

  // --- (iii) main significand addition ------------------------------------
  const uint64_t Bc = op ? (~Bhi & ones(p + 1)) : Bhi;
  const uint64_t full = (pr.x << 1) + Bc + S1;  // p+2 bits

  // --- (iv) carry-dependent normalization + (v) Round Correction ----------
  uint64_t kept;
  int exp_z;
  uint64_t rc;  // rounding carry produced by the correction stage
  bool exact = false;

  if (!op) {
    const bool c = (full >> (p + 1)) != 0;
    if (trace) trace->carry_out = c;
    if (c) {
      // Paper case (a): the carry becomes the implicit bit, exponent++.
      // Remaining rounding work: 2-bit addition {G,L} + {R1,R2}; together
      // with the S'1 already folded into `full` this reproduces the lazy
      // rounding chain bit-for-bit (carry-save associativity).
      kept = (full >> 2) & ones(p);
      const uint64_t G = (full >> 1) & 1, L = full & 1;
      exp_z = pr.exp + 1;
      if (exp_z < fmt.emin())  // cannot happen (carry raises the exponent)
        return add_lazy_sr(fmt, a, b, r, rand_word, trace);
      rc = ((G << 1 | L) + (R1 << 1 | R2)) >> 2;
      exact = !dropped && D == 0 && G == 0 && L == 0;
    } else {
      // Paper case (b): the window's 1-bit left shift. The random LSBs were
      // consumed one position high, so the correction only adds R1 at the
      // guard position (which already absorbed the stage-1 carry S'1).
      // R2 is unused on this path: including it could inject more than one
      // ULP of randomness in total and break the two-neighbour SR invariant
      // (the total here is 2*Rlow + R1*2^(r-1) <= 2^r - 2 < one ULP).
      kept = (full >> 1) & ones(p);
      const uint64_t Gp = full & 1;  // position p+1
      exp_z = pr.exp;
      if (exp_z < fmt.emin())
        return add_lazy_sr(fmt, a, b, r, rand_word, trace);
      rc = Gp & R1;
      exact = !dropped && D == 0 && Gp == 0;
    }
    if (trace) trace->norm_shift = c ? -1 : 0;
  } else {
    // Effective subtraction: the adder's carry-out only signals no-borrow.
    const uint64_t val = full & ones(p + 1);
    assert((full >> (p + 1)) == 1 && "subtraction must not borrow after swap");
    if (val == 0) return encode_zero(fmt, false);  // exact cancellation
    const int msb = 63 - __builtin_clzll(val);
    if (trace) trace->norm_shift = p - msb;
    if (msb == p) {
      // Normalized as-is: same correction as case (b).
      kept = (val >> 1) & ones(p);
      const uint64_t Gp = val & 1;
      exp_z = pr.exp;
      if (exp_z < fmt.emin())
        return add_lazy_sr(fmt, a, b, r, rand_word, trace);
      rc = Gp & R1;
      exact = !dropped && D == 0 && Gp == 0;
    } else {
      // LZD left shift by lz. On the far path lz == 1: after the shift the
      // old position p+1 becomes the kept LSB, so the Sticky-Round carry S'1
      // (already folded into the main adder at that position) IS the
      // rounding carry for the shifted cut — no further correction may be
      // applied or the randomness would be double-counted. Deeper shifts
      // only occur on the close path, where the result is exact.
      const int lz = p - msb;
      kept = (val << (lz - 1)) & ones(p);
      exp_z = pr.exp - lz;
      if (exp_z < fmt.emin())
        return add_lazy_sr(fmt, a, b, r, rand_word, trace);
      rc = 0;
      exact = !far;
    }
  }

  kept += rc;
  if (kept >> p) {  // rounding carried into the next binade
    kept >>= 1;
    exp_z += 1;
  }
  if (trace) {
    trace->round_up = rc != 0;
    trace->exact = exact;
  }
  return pack_round(fmt, pr.sign, exp_z, kept, /*frac64=*/0, /*sticky=*/false,
                    /*rn_mode=*/false, r, R, /*already_rounded=*/true, trace);
}

uint32_t add_eager_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                      RandomSource& rng, AdderTrace* trace) {
  return add_eager_sr(fmt, a, b, r, rng.draw(r), trace);
}

}  // namespace srmac
