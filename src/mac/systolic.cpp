#include "mac/systolic.hpp"

#include <cassert>

#include "fpemu/softfloat.hpp"
#include "mac/gemm.hpp"
#include "util/thread_pool.hpp"

namespace srmac {

namespace {
inline uint64_t pe_seed(uint64_t base, int tile_i, int tile_j, int pi, int pj) {
  uint64_t z = base + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(tile_i) << 32 |
                                               static_cast<uint64_t>(tile_j));
  z ^= (static_cast<uint64_t>(pi) << 17) + pj + 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 30)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

SystolicArray::SystolicArray(const MacConfig& cfg, int rows, int cols,
                             uint64_t seed)
    : cfg_(cfg.normalized()), rows_(rows), cols_(cols), seed_(seed) {
  assert(rows > 0 && cols > 0);
}

uint64_t SystolicArray::cycle_model(int M, int N, int K) const {
  // Output-stationary tiling: each (rows x cols) tile needs K cycles of
  // accumulation plus (rows + cols - 2) of skew fill and the same to drain
  // the results; consecutive tiles overlap their fill with the previous
  // drain, so charge the skew once per tile plus one pipeline prologue.
  const uint64_t tiles_m = (M + rows_ - 1) / rows_;
  const uint64_t tiles_n = (N + cols_ - 1) / cols_;
  const uint64_t per_tile = static_cast<uint64_t>(K) + rows_ + cols_ - 2;
  return tiles_m * tiles_n * per_tile + rows_ + cols_;
}

uint64_t SystolicArray::gemm(int M, int N, int K, const float* A,
                             const float* B, float* C) {
  return gemm(M, N, K, A, K, B, N, C, N, /*accumulate=*/false, /*threads=*/0);
}

uint64_t SystolicArray::gemm(int M, int N, int K, const float* A, int lda,
                             const float* B, int ldb, float* C, int ldc,
                             bool accumulate, int threads) {
  // Quantize operand streams once (what the feeders would hold in SRAM).
  std::vector<uint32_t> qa(static_cast<size_t>(M) * K), qb(static_cast<size_t>(K) * N);
  gemm_quantize(cfg_.mul_fmt, M, K, A, lda, qa.data(), threads);
  gemm_quantize(cfg_.mul_fmt, K, N, B, ldb, qb.data(), threads);

  const int tiles_m = (M + rows_ - 1) / rows_;
  const int tiles_n = (N + cols_ - 1) / cols_;
  // One output-stationary tile per task: every PE owns C[i][j] and consumes
  // the skewed A-row / B-column streams. Functionally this is a MAC chain
  // per PE in k order — bit-identical to the MacUnit reference — and tiles
  // are independent, so they split across the pool.
  ThreadPool::global().parallel_for(
      0, static_cast<int64_t>(tiles_m) * tiles_n,
      [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
          const int ti = static_cast<int>(t / tiles_n);
          const int tj = static_cast<int>(t % tiles_n);
          for (int pi = 0; pi < rows_; ++pi) {
            const int i = ti * rows_ + pi;
            if (i >= M) break;
            for (int pj = 0; pj < cols_; ++pj) {
              const int j = tj * cols_ + pj;
              if (j >= N) break;
              MacUnit pe(cfg_, pe_seed(seed_, ti, tj, pi, pj));
              if (accumulate) {
                pe.set_acc(SoftFloat::from_double(
                    cfg_.acc_fmt, C[static_cast<size_t>(i) * ldc + j]));
              }
              for (int k = 0; k < K; ++k) {
                pe.step(qa[static_cast<size_t>(i) * K + k],
                        qb[static_cast<size_t>(k) * N + j]);
              }
              C[static_cast<size_t>(i) * ldc + j] =
                  static_cast<float>(pe.acc_value());
            }
          }
        }
      },
      threads, /*grain=*/1);

  const uint64_t macs =
      static_cast<uint64_t>(M) * static_cast<uint64_t>(N) * K;
  const uint64_t cycles = cycle_model(M, N, K);
  last_util_ = static_cast<double>(macs) /
               (static_cast<double>(rows_) * cols_ * static_cast<double>(cycles));
  return cycles;
}

Tensor SystolicArray::matmul(const Tensor& a, const Tensor& b,
                             uint64_t* cycles) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0));
  Tensor c({a.dim(0), b.dim(1)});
  const uint64_t cyc = gemm(a.dim(0), b.dim(1), a.dim(1), a.data(), b.data(),
                            c.data());
  if (cycles) *cycles = cyc;
  return c;
}

}  // namespace srmac
