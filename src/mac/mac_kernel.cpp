#include "mac/mac_kernel.hpp"

#include <mutex>
#include <utility>

#include "fpemu/softfloat.hpp"
#include "mac/adder_eager_sr.hpp"
#include "mac/adder_lazy_sr.hpp"
#include "mac/adder_rn.hpp"
#include "mac/multiplier.hpp"

namespace srmac {

// Defined in mac_kernel_avx512.cpp (x86-64 only).
bool mac_kernel_avx512_supported();
void chain_group_avx512_eager(const FusedMacKernel& kernel, Unpacked* acc,
                              const uint32_t* a, const uint32_t* b_ilv, int n,
                              const uint64_t* rand_ilv);
void chain_group_avx512_lazy(const FusedMacKernel& kernel, Unpacked* acc,
                             const uint32_t* a, const uint32_t* b_ilv, int n,
                             const uint64_t* rand_ilv);
void chain_group_avx512_rn(const FusedMacKernel& kernel, Unpacked* acc,
                           const uint32_t* a, const uint32_t* b_ilv, int n,
                           const uint64_t* rand_ilv);

namespace {

/// Multiplier formats up to this encoding width get a product table
/// (width 9 -> 2^16 magnitude pairs -> 512 KiB; the paper's FP8 formats
/// are width 8 -> 128 KiB, comfortably L2-resident).
constexpr int kMaxTableWidth = 9;

struct TableKey {
  int mul_exp, mul_man, acc_exp, acc_man;
  bool subnormals;
  bool operator==(const TableKey&) const = default;
};

std::mutex g_table_mutex;
std::vector<std::pair<TableKey, std::shared_ptr<const std::vector<MacAddend>>>>
    g_tables;

}  // namespace

FusedMacKernel::FusedMacKernel(const MacConfig& cfg)
    : cfg_(cfg.normalized()),
      params_(cfg_.acc_fmt, cfg_.random_bits),
      prod_fmt_(product_format(cfg_.mul_fmt)) {
  direct_ = prod_fmt_ == cfg_.acc_fmt.with_subnormals(prod_fmt_.subnormals);
  mag_bits_ = cfg_.mul_fmt.width() - 1;
  mag_mask_ = (1u << mag_bits_) - 1;
  mul_sign_mask_ = cfg_.mul_fmt.sign_mask();

  if (cfg_.mul_fmt.width() <= kMaxTableWidth) {
    const TableKey key{cfg_.mul_fmt.exp_bits, cfg_.mul_fmt.man_bits,
                       cfg_.acc_fmt.exp_bits, cfg_.acc_fmt.man_bits,
                       cfg_.subnormals};
    {
      std::lock_guard<std::mutex> lk(g_table_mutex);
      for (const auto& [k, tab] : g_tables) {
        if (k == key) {
          table_ = tab;
          break;
        }
      }
    }
    if (!table_) {
      // Build outside the lock (idempotent: a racing builder produces an
      // identical table and the registry just keeps whichever lands first).
      const size_t n = size_t{1} << (2 * mag_bits_);
      auto tab = std::make_shared<std::vector<MacAddend>>(n);
      for (uint32_t ma = 0; ma <= mag_mask_; ++ma) {
        for (uint32_t mb = 0; mb <= mag_mask_; ++mb) {
          const Unpacked u = addend_slow(ma, mb);
          MacAddend& e = (*tab)[(size_t{ma} << mag_bits_) | mb];
          e.sig = static_cast<uint32_t>(u.sig);
          e.exp = static_cast<int16_t>(u.exp);
          e.cls = static_cast<uint8_t>(u.cls);
          e.sign_sensitive = u.cls == FpClass::kNaN ? 0 : 1;
        }
      }
      std::lock_guard<std::mutex> lk(g_table_mutex);
      bool found = false;
      for (const auto& [k, existing] : g_tables) {
        if (k == key) {
          table_ = existing;
          found = true;
          break;
        }
      }
      if (!found) {
        g_tables.emplace_back(key, tab);
        table_ = std::move(tab);
      }
    }
  }

  // Every adder kind has a 16-lane vector chain (eager-SR with its fused
  // rounding; lazy-SR and RN through the shared late-rounding chain), gated
  // only on the product table (FP8-class multiplier formats) and cpuid.
  // Wide multiplier formats and non-AVX-512 hosts run the scalar lockstep
  // groups.
  use_avx512_ = table_ != nullptr && mac_kernel_avx512_supported();
  group_width_ = use_avx512_ ? 16 : kLanes;
}

Unpacked FusedMacKernel::addend_slow(uint32_t a, uint32_t b) const {
  const uint32_t prod = multiply_exact(cfg_.mul_fmt, a, b);
  const uint32_t bits =
      direct_ ? prod
              : SoftFloat::convert(prod_fmt_, prod, cfg_.acc_fmt,
                                   RoundingMode::kNearestEven);
  return decode(cfg_.acc_fmt, bits);
}

Unpacked FusedMacKernel::addend_from_table(uint32_t a, uint32_t b) const {
  const MacAddend& e =
      (*table_)[(size_t{a & mag_mask_} << mag_bits_) | (b & mag_mask_)];
  Unpacked u;
  u.sig = e.sig;
  u.exp = e.exp;
  u.sig_bits = cfg_.acc_fmt.precision();
  u.cls = static_cast<FpClass>(e.cls);
  u.sign = e.sign_sensitive != 0 && ((a ^ b) & mul_sign_mask_) != 0;
  return u;
}

Unpacked FusedMacKernel::addend(uint32_t a, uint32_t b) const {
  return table_ ? addend_from_table(a, b) : addend_slow(a, b);
}

template <AdderKind kKind, bool kTable>
void FusedMacKernel::chain_impl(Unpacked& acc, const uint32_t* a,
                                const uint32_t* b, int n,
                                const uint64_t* rand) const {
  const AddParams ap = params_;
  for (int i = 0; i < n; ++i) {
    const Unpacked ad =
        kTable ? addend_from_table(a[i], b[i]) : addend_slow(a[i], b[i]);
    if constexpr (kKind == AdderKind::kRoundNearest) {
      acc = add_rn_core(ap, acc, ad, nullptr);
    } else if constexpr (kKind == AdderKind::kLazySR) {
      acc = add_lazy_sr_core(ap, acc, ad, rand[i], nullptr);
    } else {
      acc = add_eager_sr_core(ap, acc, ad, rand[i], nullptr);
    }
  }
}

template <AdderKind kKind, bool kTable>
void FusedMacKernel::chain_group_impl(Unpacked* acc, const uint32_t* a,
                                      const uint32_t* b_ilv, int n,
                                      const uint64_t* rand_ilv) const {
  static_assert(kLanes == 4);
  const AddParams ap = params_;
  // Named lane state (not an array): GCC's scalar replacement runs before
  // loop unrolling, so an indexed array would pin every accumulator to the
  // stack; named locals keep the four chains in registers.
  const MacAddend* tab = kTable ? table_->data() : nullptr;
  const int mag_bits = mag_bits_;
  const uint32_t mag_mask = mag_mask_;
  const uint32_t smask = mul_sign_mask_;
  const int acc_p = cfg_.acc_fmt.precision();
  const auto make_addend = [&](uint32_t av, uint32_t bv) -> Unpacked {
    if constexpr (kTable) {
      const MacAddend e =
          tab[(size_t{av & mag_mask} << mag_bits) | (bv & mag_mask)];
      Unpacked u;
      u.sig = e.sig;
      u.exp = e.exp;
      u.sig_bits = acc_p;
      u.cls = static_cast<FpClass>(e.cls);
      u.sign = e.sign_sensitive != 0 && ((av ^ bv) & smask) != 0;
      return u;
    } else {
      return addend_slow(av, bv);
    }
  };
  const auto step = [&](const Unpacked& la, uint32_t ai, uint32_t bi,
                        uint64_t ri) -> Unpacked {
    const Unpacked ad = make_addend(ai, bi);
    if constexpr (kKind == AdderKind::kRoundNearest) {
      (void)ri;
      return add_rn_core(ap, la, ad, nullptr);
    } else if constexpr (kKind == AdderKind::kLazySR) {
      return add_lazy_sr_core(ap, la, ad, ri, nullptr);
    } else {
      return add_eager_sr_core(ap, la, ad, ri, nullptr);
    }
  };

  Unpacked l0 = acc[0], l1 = acc[1], l2 = acc[2], l3 = acc[3];
  const bool rnd = kKind != AdderKind::kRoundNearest;
  for (int i = 0; i < n; ++i) {
    const uint32_t ai = a[i];
    const uint32_t* bi = b_ilv + static_cast<size_t>(i) * kLanes;
    const uint64_t* ri = rnd ? rand_ilv + static_cast<size_t>(i) * kLanes
                             : rand_ilv;
    l0 = step(l0, ai, bi[0], rnd ? ri[0] : 0);
    l1 = step(l1, ai, bi[1], rnd ? ri[1] : 0);
    l2 = step(l2, ai, bi[2], rnd ? ri[2] : 0);
    l3 = step(l3, ai, bi[3], rnd ? ri[3] : 0);
  }
  acc[0] = l0;
  acc[1] = l1;
  acc[2] = l2;
  acc[3] = l3;
}

void FusedMacKernel::chain_group(Unpacked* acc, const uint32_t* a,
                                 const uint32_t* b_ilv, int n,
                                 const uint64_t* rand_ilv) const {
  if (use_avx512_) {
    switch (cfg_.adder) {
      case AdderKind::kEagerSR:
        chain_group_avx512_eager(*this, acc, a, b_ilv, n, rand_ilv);
        return;
      case AdderKind::kLazySR:
        chain_group_avx512_lazy(*this, acc, a, b_ilv, n, rand_ilv);
        return;
      case AdderKind::kRoundNearest:
        chain_group_avx512_rn(*this, acc, a, b_ilv, n, rand_ilv);
        return;
    }
  }
  const bool tab = table_ != nullptr;
  switch (cfg_.adder) {
    case AdderKind::kRoundNearest:
      tab ? chain_group_impl<AdderKind::kRoundNearest, true>(acc, a, b_ilv, n,
                                                             rand_ilv)
          : chain_group_impl<AdderKind::kRoundNearest, false>(acc, a, b_ilv, n,
                                                              rand_ilv);
      break;
    case AdderKind::kLazySR:
      tab ? chain_group_impl<AdderKind::kLazySR, true>(acc, a, b_ilv, n,
                                                       rand_ilv)
          : chain_group_impl<AdderKind::kLazySR, false>(acc, a, b_ilv, n,
                                                        rand_ilv);
      break;
    case AdderKind::kEagerSR:
      tab ? chain_group_impl<AdderKind::kEagerSR, true>(acc, a, b_ilv, n,
                                                        rand_ilv)
          : chain_group_impl<AdderKind::kEagerSR, false>(acc, a, b_ilv, n,
                                                         rand_ilv);
      break;
  }
}

void FusedMacKernel::chain(Unpacked& acc, const uint32_t* a, const uint32_t* b,
                           int n, const uint64_t* rand) const {
  const bool tab = table_ != nullptr;
  switch (cfg_.adder) {
    case AdderKind::kRoundNearest:
      tab ? chain_impl<AdderKind::kRoundNearest, true>(acc, a, b, n, rand)
          : chain_impl<AdderKind::kRoundNearest, false>(acc, a, b, n, rand);
      break;
    case AdderKind::kLazySR:
      tab ? chain_impl<AdderKind::kLazySR, true>(acc, a, b, n, rand)
          : chain_impl<AdderKind::kLazySR, false>(acc, a, b, n, rand);
      break;
    case AdderKind::kEagerSR:
      tab ? chain_impl<AdderKind::kEagerSR, true>(acc, a, b, n, rand)
          : chain_impl<AdderKind::kEagerSR, false>(acc, a, b, n, rand);
      break;
  }
}

}  // namespace srmac
