#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mac/mac_config.hpp"

namespace srmac {

/// Result of a bit-accurate dot product, with the rounding-free reference
/// for error studies (the swamping/stagnation ablations).
struct DotResult {
  double value = 0.0;      ///< accumulator reading after the chain
  double reference = 0.0;  ///< double-precision reference of the quantized inputs
  uint32_t acc_bits = 0;
};

/// Computes dot(a, b) through a freshly seeded MacUnit: inputs are quantized
/// to cfg.mul_fmt with RN, then accumulated in order through the configured
/// adder. This is the elementary operation the training GEMMs build on.
DotResult dot_mac(const MacConfig& cfg, std::span<const float> a,
                  std::span<const float> b, uint64_t seed = 0xACE1u);

/// Same chain but with inputs already quantized to cfg.mul_fmt bit patterns.
DotResult dot_mac_bits(const MacConfig& cfg, std::span<const uint32_t> a,
                       std::span<const uint32_t> b, uint64_t seed = 0xACE1u);

/// Quantizes a float vector into `fmt` bit patterns (RN).
std::vector<uint32_t> quantize_vector(const FpFormat& fmt,
                                      std::span<const float> v);

}  // namespace srmac
