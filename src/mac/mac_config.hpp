#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "fpemu/format.hpp"

namespace srmac {

/// Base seed every per-element LFSR derivation starts from when the caller
/// does not provide one. A single constant shared by the direct GEMM entry
/// points (mac/gemm.hpp) and the engine's ComputeContext, so a
/// context-default run and a direct-call run are reproducibly identical.
inline constexpr uint64_t kDefaultSeed = 0x5EED5EEDull;

/// Which adder micro-architecture a MAC instantiates (paper Sec. III).
enum class AdderKind {
  kRoundNearest,  ///< classic dual-path adder, RN-even (baseline)
  kLazySR,        ///< SR applied after normalization (Fig. 3a)
  kEagerSR,       ///< SR started after alignment, with Round Correction (Fig. 3b)
};

std::string to_string(AdderKind k);

/// Scenario-grammar token of an adder kind: "rn" / "lazy_sr" / "eager_sr".
std::string adder_token(AdderKind k);
std::optional<AdderKind> parse_adder_token(std::string_view token);

/// Full configuration of a MAC unit: FP8-class multiplier inputs, a wider
/// accumulator format, the adder kind, the number of random bits r, and
/// whether subnormal encodings are supported (paper Sec. IV).
struct MacConfig {
  FpFormat mul_fmt = kFp8E5M2;  ///< multiplier input format (E5M2 in the paper)
  FpFormat acc_fmt = kFp12;     ///< accumulator / adder format (E6M5 reference)
  AdderKind adder = AdderKind::kEagerSR;
  int random_bits = 9;          ///< r; the paper's default is p+3
  bool subnormals = true;       ///< Sub ON / OFF

  /// The paper's default r = p + 3 for a given adder format.
  static int default_random_bits(const FpFormat& acc) {
    return acc.precision() + 3;
  }

  /// Saturation cap of the scenario grammar's r= token: parse() stops
  /// accumulating digits here, and to_string() emits at most this value, so
  /// absurd r values survive a print->parse round trip instead of silently
  /// diverging (normalized() clamps into the adder's real range anyway).
  static constexpr int kRandomBitsCap = 1000000;

  /// The representative this config's to_string() actually denotes: the
  /// config-level subnormal flag applied to both formats (the grammar has
  /// one sub token, not one per format) and random_bits clamped into
  /// [0, kRandomBitsCap] (the grammar has no sign and saturates digits).
  /// parse(to_string(c)) == c.canonical() for every config, and a canonical
  /// config round-trips to itself exactly
  /// (tests/mac/mac_config_roundtrip_test.cpp).
  MacConfig canonical() const {
    MacConfig c = *this;
    c.mul_fmt.subnormals = subnormals;
    c.acc_fmt.subnormals = subnormals;
    c.random_bits = std::clamp(random_bits, 0, kRandomBitsCap);
    return c;
  }

  /// Applies the subnormal flag consistently to both formats and clamps
  /// `random_bits` into the range the configured adder can actually consume:
  /// the rounding datapaths hold at most 32 random bits, the lazy SR scheme
  /// needs at least 1 and the eager scheme at least 3 (its sticky-round
  /// stage splits off two MSBs). RN ignores randomness; its r is only kept
  /// non-negative so LFSR sizing stays meaningful.
  MacConfig normalized() const {
    MacConfig c = *this;
    c.mul_fmt.subnormals = subnormals;
    c.acc_fmt.subnormals = subnormals;
    const int lo = adder == AdderKind::kEagerSR  ? 3
                   : adder == AdderKind::kLazySR ? 1
                                                 : 0;
    c.random_bits = std::clamp(random_bits, lo, 32);
    return c;
  }

  friend bool operator==(const MacConfig& a, const MacConfig& b) {
    return a.mul_fmt == b.mul_fmt && a.acc_fmt == b.acc_fmt &&
           a.adder == b.adder && a.random_bits == b.random_bits &&
           a.subnormals == b.subnormals;
  }

  std::string name() const;

  /// Canonical scenario string, e.g. "eager_sr:e5m2/e6m5:r=9:subON" —
  /// the grammar shared by EmuEngine::Builder, the common CLI helper, and
  /// every bench/example that selects a configuration by string:
  ///
  ///   macspec := adder ":" mulfmt "/" accfmt [":r=" int] [":sub" ("ON"|"OFF")]
  ///   adder   := "rn" | "lazy_sr" | "eager_sr"
  ///   fmt     := "e" int "m" int
  ///
  /// to_string() always emits every field; parse() accepts omitted options
  /// (r defaults to default_random_bits(acc), sub defaults to ON) and is
  /// case-insensitive in the tokens. parse(to_string(c)) == c.canonical()
  /// for every config — canonical configs (anything parse itself produced)
  /// round-trip exactly (tests/mac/mac_config_roundtrip_test.cpp).
  std::string to_string() const;
  static std::optional<MacConfig> parse(std::string_view spec,
                                        std::string* error = nullptr);
};

inline std::string to_string(AdderKind k) {
  switch (k) {
    case AdderKind::kRoundNearest: return "RN";
    case AdderKind::kLazySR: return "SR lazy";
    case AdderKind::kEagerSR: return "SR eager";
  }
  return "?";
}

inline std::string MacConfig::name() const {
  // srmac:: qualification: the to_string() member hides the free overload.
  return srmac::to_string(adder) + " " + acc_fmt.name() +
         (adder == AdderKind::kRoundNearest ? "" : " r=" + std::to_string(random_bits)) +
         (subnormals ? " subON" : " subOFF");
}

}  // namespace srmac
