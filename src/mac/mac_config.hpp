#pragma once

#include <algorithm>
#include <string>

#include "fpemu/format.hpp"

namespace srmac {

/// Which adder micro-architecture a MAC instantiates (paper Sec. III).
enum class AdderKind {
  kRoundNearest,  ///< classic dual-path adder, RN-even (baseline)
  kLazySR,        ///< SR applied after normalization (Fig. 3a)
  kEagerSR,       ///< SR started after alignment, with Round Correction (Fig. 3b)
};

std::string to_string(AdderKind k);

/// Full configuration of a MAC unit: FP8-class multiplier inputs, a wider
/// accumulator format, the adder kind, the number of random bits r, and
/// whether subnormal encodings are supported (paper Sec. IV).
struct MacConfig {
  FpFormat mul_fmt = kFp8E5M2;  ///< multiplier input format (E5M2 in the paper)
  FpFormat acc_fmt = kFp12;     ///< accumulator / adder format (E6M5 reference)
  AdderKind adder = AdderKind::kEagerSR;
  int random_bits = 9;          ///< r; the paper's default is p+3
  bool subnormals = true;       ///< Sub ON / OFF

  /// The paper's default r = p + 3 for a given adder format.
  static int default_random_bits(const FpFormat& acc) {
    return acc.precision() + 3;
  }

  /// Applies the subnormal flag consistently to both formats and clamps
  /// `random_bits` into the range the configured adder can actually consume:
  /// the rounding datapaths hold at most 32 random bits, the lazy SR scheme
  /// needs at least 1 and the eager scheme at least 3 (its sticky-round
  /// stage splits off two MSBs). RN ignores randomness; its r is only kept
  /// non-negative so LFSR sizing stays meaningful.
  MacConfig normalized() const {
    MacConfig c = *this;
    c.mul_fmt.subnormals = subnormals;
    c.acc_fmt.subnormals = subnormals;
    const int lo = adder == AdderKind::kEagerSR  ? 3
                   : adder == AdderKind::kLazySR ? 1
                                                 : 0;
    c.random_bits = std::clamp(random_bits, lo, 32);
    return c;
  }

  std::string name() const;
};

inline std::string to_string(AdderKind k) {
  switch (k) {
    case AdderKind::kRoundNearest: return "RN";
    case AdderKind::kLazySR: return "SR lazy";
    case AdderKind::kEagerSR: return "SR eager";
  }
  return "?";
}

inline std::string MacConfig::name() const {
  return to_string(adder) + " " + acc_fmt.name() +
         (adder == AdderKind::kRoundNearest ? "" : " r=" + std::to_string(random_bits)) +
         (subnormals ? " subON" : " subOFF");
}

}  // namespace srmac
