#pragma once

#include <cstdint>

#include "mac/adder_common.hpp"

namespace srmac {

/// Floating-point adder with *eager* stochastic rounding — the paper's main
/// contribution (Fig. 3b, Fig. 4).
///
/// Rounding starts right after significand alignment:
///  * Sticky Round stage (far path): the r-2 LSBs of the random word are
///    added to the aligned operand's shifted-out field starting at position
///    p+3; only the two MSBs of that partial sum survive: S'1 (the carry
///    into the main adder's LSB) and S'2.
///  * The main p+1-bit addition absorbs S'1 as carry-in, so the
///    normalization decision operates on the partially rounded sum.
///  * Round Correction (after the carry-dependent normalization):
///     - carry out  (paper case (a), "no normalization"): a 2-bit addition
///       of {G, L} and the two remaining random MSBs {R1, R2} yields the
///       rounding carry; the outcome is *bit-identical* to the lazy design
///       under the same random word (tested exhaustively), by carry-save
///       associativity with the S'1 injection.
///     - no carry  (paper case (b), the window's 1-bit left shift): the
///       random LSBs were consumed one position high, so only R1 joins the
///       correction (at the guard bit, which already absorbed S'1). R2 is
///       deliberately unused here: the total injected randomness must stay
///       below one ULP or the two-neighbour SR invariant breaks.
///     - 1-bit cancellation on the far path: after the shift the old
///       position p+1 is the kept LSB, so the S'1 carry folded into the
///       main adder *is* the rounding carry — no further correction.
/// Reconstruction note: the paper consults S'2 explicitly and swaps the
/// S'1/S'2 roles between its cases; in this reconstruction S'1 rides the
/// main adder's carry-in, which places the Sticky-Round result at the
/// correct weight in every normalization outcome, so S'2 is carried in the
/// datapath but never gates the correction. Both wirings realize the same
/// r-bit-quantized SR distribution (validated by the Sec. III-B harness).
/// The close path (|d| <= 1) has no shifted-out field, so the Sticky Round
/// stage is bypassed; deep cancellations are exact and never round.
///
/// Denormalized results fall back to the late rounding stage (pack_round):
/// a subnormal cut invalidates the eager pre-alignment, mirroring the
/// dedicated slow path subnormal handling costs in the hardware model.
uint32_t add_eager_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                      uint64_t rand_word, AdderTrace* trace = nullptr);

/// Convenience overload drawing from a RandomSource.
uint32_t add_eager_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                      RandomSource& rng, AdderTrace* trace = nullptr);

}  // namespace srmac
