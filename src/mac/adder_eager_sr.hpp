#pragma once

#include <cstdint>

#include "mac/adder_common.hpp"
#include "mac/adder_lazy_sr.hpp"

namespace srmac {

/// Floating-point adder with *eager* stochastic rounding — the paper's main
/// contribution (Fig. 3b, Fig. 4).
///
/// Rounding starts right after significand alignment:
///  * Sticky Round stage (far path): the r-2 LSBs of the random word are
///    added to the aligned operand's shifted-out field starting at position
///    p+3; only the two MSBs of that partial sum survive: S'1 (the carry
///    into the main adder's LSB) and S'2.
///  * The main p+1-bit addition absorbs S'1 as carry-in, so the
///    normalization decision operates on the partially rounded sum.
///  * Round Correction (after the carry-dependent normalization):
///     - carry out  (paper case (a), "no normalization"): a 2-bit addition
///       of {G, L} and the two remaining random MSBs {R1, R2} yields the
///       rounding carry; the outcome is *bit-identical* to the lazy design
///       under the same random word (tested exhaustively), by carry-save
///       associativity with the S'1 injection.
///     - no carry  (paper case (b), the window's 1-bit left shift): the
///       random LSBs were consumed one position high, so only R1 joins the
///       correction (at the guard bit, which already absorbed S'1). R2 is
///       deliberately unused here: the total injected randomness must stay
///       below one ULP or the two-neighbour SR invariant breaks.
///     - 1-bit cancellation on the far path: after the shift the old
///       position p+1 is the kept LSB, so the S'1 carry folded into the
///       main adder *is* the rounding carry — no further correction.
/// Reconstruction note: the paper consults S'2 explicitly and swaps the
/// S'1/S'2 roles between its cases; in this reconstruction S'1 rides the
/// main adder's carry-in, which places the Sticky-Round result at the
/// correct weight in every normalization outcome, so S'2 is carried in the
/// datapath but never gates the correction. Both wirings realize the same
/// r-bit-quantized SR distribution (validated by the Sec. III-B harness).
/// The close path (|d| <= 1) has no shifted-out field, so the Sticky Round
/// stage is bypassed; deep cancellations are exact and never round.
///
/// Denormalized results fall back to the late rounding stage (pack_round):
/// a subnormal cut invalidates the eager pre-alignment, mirroring the
/// dedicated slow path subnormal handling costs in the hardware model.
///
/// Contract:
///  * Operand packing — `a` and `b` are bit patterns in `fmt`; the return
///    value is the packed, stochastically rounded sum in the same format
///    (specials as in add_rn: canonical NaN, Inf propagation, +0 on exact
///    cancellation).
///  * Random bits — exactly the low r bits of `rand_word` are consumed,
///    3 <= r <= 32, split per the eager scheme: the r-2 LSBs enter at the
///    Sticky Round stage (alignment time), the two MSBs at Round
///    Correction; higher word bits are ignored. Under the same word the
///    result is bit-identical to add_lazy_sr (tested exhaustively).
///  * Trace — as in add_rn; `round_up` reports the Round Correction carry,
///    and the subnormal fallback re-fills the trace on the lazy path.
uint32_t add_eager_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                      uint64_t rand_word, AdderTrace* trace = nullptr);

/// Convenience overload drawing one word from a RandomSource.
uint32_t add_eager_sr(const FpFormat& fmt, uint32_t a, uint32_t b, int r,
                      RandomSource& rng, AdderTrace* trace = nullptr);

/// Decoded-operand core of add_eager_sr: canonical decoded operands in,
/// canonical decoded result out (see add_rn_core for the decoded-form
/// contract; packing, random-bit consumption, and trace semantics as in
/// add_eager_sr above).
///
/// The op-dependent selects are written branch-free (XOR with a sign mask
/// instead of conditional complement): the effective-subtraction flag is a
/// coin flip on real accumulation data, and a data-dependent branch on it
/// costs more in mispredictions than both arms of the select. The remaining
/// branches (specials, normalization case, subnormal fallback) are heavily
/// skewed in accumulation chains and predict well. The AddParams carry the
/// precomputed loop-invariant masks of the (fmt, r) configuration.
inline Unpacked add_eager_sr_core(const AddParams& ap, const Unpacked& ua,
                                  const Unpacked& ub, uint64_t rand_word,
                                  AdderTrace* trace = nullptr) {
  const FpFormat& fmt = ap.fmt;
  const int p = ap.p;
  const int r = ap.r;
  assert(r >= 3 && r <= 32);
  const PreparedAddU pr = prepare_add_u(fmt, ua, ub);
  if (pr.special) [[unlikely]] {
    if (trace) trace->special = true;
    return pr.special_val;
  }
  const bool far = pr.d > 1;
  const bool op = pr.op;
  const uint64_t opmask = op ? ~0ull : 0ull;

  if (trace) {
    trace->far_path = far;
    trace->effective_sub = op;
  }

  // --- (ii) significand alignment -----------------------------------------
  // Window of p+r positions: the p+1 MSBs feed the main adder, the r-1 bits
  // below (positions p+2 .. p+r) form the shifted-out field D.
  const uint64_t yk = (pr.d < p + r) ? ((pr.y << r) >> pr.d) : 0;
  const uint64_t Bhi = yk >> (r - 1);               // positions 1 .. p+1
  const uint64_t D = yk & ap.mask_rm1;              // positions p+2 .. p+r
  const bool dropped =                    // any operand bit truncated away
      (pr.d >= p + r) ? (pr.y != 0)
                      : (((pr.y << r) & ((1ull << pr.d) - 1)) != 0);

  const uint64_t R = rand_word & ap.mask_r;
  const uint64_t Rlow = R & ap.mask_rm2;  // the r-2 LSBs used eagerly; the
                                          // top two (R1, R2) round-correct

  // --- Sticky Round stage (Fig. 3b) ---------------------------------------
  // Adds the r-2 random LSBs to D starting at position p+3 of the eventual
  // carry-normalized result (R3 lands on D1); the effective-subtraction
  // complement and its +1 are fused into the same small adder. Only the
  // partial sum's carry out survives: S'1, riding the main adder carry-in.
  // (The paper's S'2 is carried in the datapath but never gates the
  // correction in this reconstruction — see the header comment.)
  // On the close path (|d| <= 1) the shifted-out field D is zero by
  // construction, and this expression degenerates exactly to the paper's
  // close-path wiring: S'1 = op (the two's-complement +1), with the random
  // LSBs contributing nothing to the carry.
  const uint64_t Dc = (D ^ opmask) & ap.mask_rm1;
  const uint64_t u = Dc + (Rlow << 1) + (op ? 1u : 0u);
  const uint64_t S1 = (u >> (r - 1)) & 1;

  // --- (iii) main significand addition ------------------------------------
  const uint64_t Bc = (Bhi ^ opmask) & ap.mask_p1;
  const uint64_t full = (pr.x << 1) + Bc + S1;  // p+2 bits

  // --- (iv) carry-dependent normalization + (v) Round Correction ----------
  // For effective subtraction bit p+1 of `full` is the no-borrow flag
  // (always set after the magnitude swap), not a value bit; mask it away so
  // `v` holds the magnitude on both paths and the normalization case is a
  // single shift count s = msb - p: +1 carry (addition only), 0 in place,
  // negative LZD cancellation (subtraction only).
  assert(op ? (full >> (p + 1)) == 1 : true);
  const uint64_t v = full & ~(opmask << (p + 1));
  if (v == 0) [[unlikely]] return unpacked_zero(fmt, false);  // exact cancellation
  const int msb = 63 - __builtin_clzll(v);
  const int s = msb - p;

  if (trace) {
    trace->carry_out = !op && s == 1;
    trace->norm_shift = op ? p - msb : (s == 1 ? -1 : 0);
  }

  uint64_t kept;
  int exp_z;
  uint64_t rc;  // rounding carry produced by the correction stage
  bool exact;

  if (s >= 0) [[likely]] {
    // Paper cases (a) (s == 1, carry out: the carry becomes the implicit
    // bit, exponent++) and (b) (s == 0, the window's 1-bit left shift),
    // unified branch-free: s+1 value bits fall below the kept window, and
    // the Round Correction adds the top s+1 random bits to them. For (a)
    // that is the 2-bit addition {G,L} + {R1,R2} which — together with the
    // S'1 already folded into `full` — reproduces the lazy rounding chain
    // bit-for-bit (carry-save associativity). For (b) it degenerates to
    // Gp & R1: the random LSBs were consumed one position high, and R2
    // must stay unused or the total injected randomness could exceed one
    // ULP and break the two-neighbour SR invariant (the total here is
    // 2*Rlow + R1*2^(r-1) <= 2^r - 2 < one ULP).
    kept = (v >> (s + 1)) & ap.mask_p;
    const uint64_t t = v & ((1ull << (s + 1)) - 1);  // {G,L} or {Gp}
    exp_z = pr.exp + s;
    rc = (t + (R >> (r - 1 - s))) >> (s + 1);
    exact = !dropped && D == 0 && t == 0;
  } else {
    // LZD left shift by lz. On the far path lz == 1: after the shift the
    // old position p+1 becomes the kept LSB, so the Sticky-Round carry S'1
    // (already folded into the main adder at that position) IS the
    // rounding carry for the shifted cut — no further correction may be
    // applied or the randomness would be double-counted. Deeper shifts
    // only occur on the close path, where the result is exact.
    const int lz = -s;
    kept = (v << (lz - 1)) & ap.mask_p;
    exp_z = pr.exp - lz;
    rc = 0;
    exact = !far;
  }
  // Denormalized cut: the eager pre-alignment is invalid, fall back to the
  // late-rounding (lazy) datapath with the same operands and random word.
  if (exp_z < ap.emin) [[unlikely]]
    return add_lazy_sr_fallback(ap, ua, ub, rand_word, trace);

  kept += rc;
  const uint64_t binade = kept >> p;  // rounding carried into the next binade
  kept >>= binade;
  exp_z += static_cast<int>(binade);
  if (trace) {
    trace->round_up = rc != 0;
    trace->exact = exact;
  }
  return round_unpacked_core(ap, pr.sign, exp_z, kept, /*frac64=*/0,
                             /*sticky=*/false, /*rn_mode=*/false, R,
                             /*already_rounded=*/true, trace);
}

/// Decoded-operand entry point: add_eager_sr_core with the AddParams built
/// per call (same contract; use the _core form with precomputed params in
/// loops).
inline Unpacked add_eager_sr_u(const FpFormat& fmt, const Unpacked& ua,
                               const Unpacked& ub, int r, uint64_t rand_word,
                               AdderTrace* trace = nullptr) {
  return add_eager_sr_core(AddParams(fmt, r), ua, ub, rand_word, trace);
}

}  // namespace srmac
