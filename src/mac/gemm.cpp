#include "mac/gemm.hpp"

#include <algorithm>
#include <cassert>
#include <span>
#include <vector>

#include "fpemu/softfloat.hpp"
#include "mac/mac_kernel.hpp"
#include "mac/mac_unit.hpp"
#include "rng/lfsr.hpp"
#include "util/thread_pool.hpp"

namespace srmac {

namespace {

/// splitmix-style hash for reproducible per-element LFSR seeds.
inline uint64_t mix_seed(uint64_t s, uint64_t i, uint64_t j) {
  uint64_t z = s + 0x9E3779B97F4A7C15ull * (i * 0x100000001B3ull + j + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// mix_seed through the optional seed periods (grouped same-shape
/// execution, see the gemm_mac_bits_packed contract in gemm.hpp): a
/// non-zero period folds the coordinate before hashing, so element
/// (i, s*L + t) of a wide column-concatenated GEMM draws the same LFSR
/// sequence as element (i, t) of the standalone problem it came from.
inline uint64_t mix_seed_periodic(uint64_t s, uint64_t i, uint64_t j,
                                  int row_period, int col_period) {
  if (row_period > 0) i %= static_cast<uint64_t>(row_period);
  if (col_period > 0) j %= static_cast<uint64_t>(col_period);
  return mix_seed(s, i, j);
}

/// Blocking parameters (see docs/PERF.md). NC bounds the packed-B working
/// set of one row sweep (NC * K operand words); KC bounds the bulk-draw
/// random buffer and gives the k-loop a cache-sized stride.
constexpr int kNc = 64;
constexpr int kKc = 512;

}  // namespace

void gemm_quantize(const FpFormat& fmt, int rows, int cols, const float* src,
                   int ld, uint32_t* dst, int threads) {
  ThreadPool::global().parallel_for(
      0, rows,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r)
          for (int c = 0; c < cols; ++c)
            dst[static_cast<size_t>(r) * cols + c] = SoftFloat::from_double(
                fmt, src[static_cast<size_t>(r) * ld + c]);
      },
      threads, /*grain=*/16);
}

void gemm_pack_b_into(const MacConfig& cfg, int K, int N, const uint32_t* Bq,
                      int ldb, PackedBPanels* out, int threads) {
  const MacConfig c = cfg.normalized();
  const FusedMacKernel kernel(c);

  // Pack B into group panels. Full groups of G = group_width() columns are
  // interleaved (bt[group][k*G + l]) so a lockstep step reads all lanes'
  // operands from one contiguous line; the N % G remainder columns follow,
  // each contiguous in k for the single-lane chains.
  out->K = K;
  out->N = N;
  const int G = out->group = kernel.group_width();
  const int full_groups = N / G;
  out->bt.resize(static_cast<size_t>(N) * K);
  std::vector<uint32_t>& bt = out->bt;
  ThreadPool::global().parallel_for(
      0, N,
      [&](int64_t lo, int64_t hi) {
        for (int64_t j = lo; j < hi; ++j) {
          uint32_t* dst;
          size_t stride;
          if (j < static_cast<int64_t>(full_groups) * G) {
            dst = bt.data() + (j / G) * static_cast<size_t>(G) * K + (j % G);
            stride = static_cast<size_t>(G);
          } else {
            dst = bt.data() + static_cast<size_t>(full_groups) * G * K +
                  static_cast<size_t>(j - static_cast<int64_t>(full_groups) * G) * K;
            stride = 1;
          }
          for (int k = 0; k < K; ++k)
            dst[static_cast<size_t>(k) * stride] =
                Bq[static_cast<size_t>(k) * ldb + j];
        }
      },
      threads, /*grain=*/16);
}

PackedBPanels gemm_pack_b(const MacConfig& cfg, int K, int N,
                          const uint32_t* Bq, int ldb, int threads) {
  PackedBPanels out;
  gemm_pack_b_into(cfg, K, N, Bq, ldb, &out, threads);
  return out;
}

void gemm_mac_bits_packed(const MacConfig& cfg, int M, int N, int K,
                          const uint32_t* Aq, int lda, const PackedBPanels& B,
                          float* C, int ldc, bool accumulate, uint64_t seed,
                          int threads, int seed_row_period,
                          int seed_col_period) {
  const MacConfig c = cfg.normalized();
  const FusedMacKernel kernel(c);
  const FpFormat acc_fmt = c.acc_fmt;

  const bool needs_rand = kernel.needs_rand();
  const int lfsr_width = kernel.lfsr_width();
  const int r = c.random_bits;

  const int G = kernel.group_width();
  assert(B.K == K && B.N == N && B.group == G &&
         "PackedBPanels must be packed for this problem and config");
  const int full_groups = N / G;
  const std::vector<uint32_t>& bt = B.bt;
  ThreadPool::global().parallel_for(
      0, M,
      [&](int64_t row_lo, int64_t row_hi) {
        GaloisLfsr lfsr(lfsr_width, 1);
        std::vector<GaloisLfsr> lf(G, lfsr);  // one sequence per group lane
        const int kc_width = std::min(K, kKc);
        std::vector<uint64_t> rand_tmp(needs_rand ? kc_width : 0);
        std::vector<uint64_t> rand_ilv(
            needs_rand ? static_cast<size_t>(G) * kc_width : 1);
        std::vector<Unpacked> acc(G);
        // Takes the address, not the value: with accumulate=false the
        // caller's C may be uninitialized and must not be read.
        auto init_acc = [&](const float* out) {
          return accumulate
                     ? decode(acc_fmt, SoftFloat::from_double(acc_fmt, *out))
                     : unpacked_zero(acc_fmt, false);
        };
        auto finish = [&](const Unpacked& a) {
          return static_cast<float>(
              SoftFloat::to_double(acc_fmt, encode_unpacked(acc_fmt, a)));
        };
        // MC x NC x KC blocking: this task's rows sweep one NC-wide panel
        // of packed B at a time; within the panel, G = group_width() output
        // elements run in lockstep (independent chains hide the per-add
        // latency) and each chain walks K in KC strides with one bulk LFSR
        // fill per stride and lane.
        for (int jc = 0; jc < N; jc += kNc) {
          const int jhi = std::min(N, jc + kNc);
          for (int64_t i = row_lo; i < row_hi; ++i) {
            const uint32_t* arow = Aq + static_cast<size_t>(i) * lda;
            int j = jc;
            for (; j + G <= jhi; j += G) {
              // b panel for this group, interleaved: bg[k*G + l].
              const uint32_t* bg =
                  bt.data() + static_cast<size_t>(j / G) * G * K;
              for (int l = 0; l < G; ++l) {
                acc[l] = init_acc(C + static_cast<size_t>(i) * ldc + j + l);
                lf[l].reseed(mix_seed_periodic(
                    seed, static_cast<uint64_t>(i),
                    static_cast<uint64_t>(j + l), seed_row_period,
                    seed_col_period));
              }
              for (int kc = 0; kc < K; kc += kKc) {
                const int kn = std::min(K - kc, kKc);
                if (needs_rand) {
                  // One bulk fill per lane, interleaved to match the group
                  // operand layout (rand_ilv[k*G + l]).
                  for (int l = 0; l < G; ++l) {
                    lf[l].fill(std::span<uint64_t>(rand_tmp.data(),
                                                   static_cast<size_t>(kn)),
                               r);
                    for (int k = 0; k < kn; ++k)
                      rand_ilv[static_cast<size_t>(k) * G + l] = rand_tmp[k];
                  }
                }
                kernel.chain_group(acc.data(), arow + kc,
                                   bg + static_cast<size_t>(kc) * G, kn,
                                   rand_ilv.data());
              }
              for (int l = 0; l < G; ++l)
                C[static_cast<size_t>(i) * ldc + j + l] = finish(acc[l]);
            }
            for (; j < jhi; ++j) {
              // Remainder columns (N % G): contiguous panel after the
              // interleaved groups.
              const uint32_t* bcol = bt.data() +
                                     static_cast<size_t>(full_groups) * G * K +
                                     static_cast<size_t>(j - full_groups * G) * K;
              lfsr.reseed(mix_seed_periodic(
                  seed, static_cast<uint64_t>(i), static_cast<uint64_t>(j),
                  seed_row_period, seed_col_period));
              float* out = C + static_cast<size_t>(i) * ldc + j;
              Unpacked a0 = init_acc(out);
              for (int kc = 0; kc < K; kc += kKc) {
                const int kn = std::min(K - kc, kKc);
                if (needs_rand)
                  lfsr.fill(std::span<uint64_t>(rand_ilv.data(),
                                                static_cast<size_t>(kn)),
                            r);
                kernel.chain(a0, arow + kc, bcol + kc, kn, rand_ilv.data());
              }
              *out = finish(a0);
            }
          }
        }
      },
      threads, /*grain=*/1);
}

void gemm_dequantize(const FpFormat& fmt, int rows, int cols,
                     const uint32_t* src, int ld, float* dst) {
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      dst[static_cast<size_t>(r) * cols + c] = static_cast<float>(
          SoftFloat::to_double(fmt, src[static_cast<size_t>(r) * ld + c]));
}

void gemm_mac_bits(const MacConfig& cfg, int M, int N, int K,
                   const uint32_t* Aq, int lda, const uint32_t* Bq, int ldb,
                   float* C, int ldc, bool accumulate, uint64_t seed,
                   int threads, int seed_row_period, int seed_col_period) {
  const MacConfig c = cfg.normalized();
  const PackedBPanels packed = gemm_pack_b(c, K, N, Bq, ldb, threads);
  gemm_mac_bits_packed(c, M, N, K, Aq, lda, packed, C, ldc, accumulate, seed,
                       threads, seed_row_period, seed_col_period);
}

void gemm_mac(const MacConfig& cfg, int M, int N, int K, const float* A,
              int lda, const float* B, int ldb, float* C, int ldc,
              bool accumulate, uint64_t seed, int threads,
              int seed_row_period, int seed_col_period) {
  const MacConfig c = cfg.normalized();
  std::vector<uint32_t> qa(static_cast<size_t>(M) * K);
  std::vector<uint32_t> qb(static_cast<size_t>(K) * N);
  gemm_quantize(c.mul_fmt, M, K, A, lda, qa.data(), threads);
  gemm_quantize(c.mul_fmt, K, N, B, ldb, qb.data(), threads);
  gemm_mac_bits(c, M, N, K, qa.data(), K, qb.data(), N, C, ldc, accumulate,
                seed, threads, seed_row_period, seed_col_period);
}

void gemm_mac_reference(const MacConfig& cfg, int M, int N, int K,
                        const float* A, int lda, const float* B, int ldb,
                        float* C, int ldc, bool accumulate, uint64_t seed,
                        int threads, int seed_row_period,
                        int seed_col_period) {
  const MacConfig c = cfg.normalized();

  // Quantize operands once (RN into the multiplier input format).
  std::vector<uint32_t> qa(static_cast<size_t>(M) * K);
  std::vector<uint32_t> qb(static_cast<size_t>(K) * N);
  gemm_quantize(c.mul_fmt, M, K, A, lda, qa.data(), threads);
  gemm_quantize(c.mul_fmt, K, N, B, ldb, qb.data(), threads);

  ThreadPool::global().parallel_for(
      0, M,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          for (int j = 0; j < N; ++j) {
            MacUnit unit(c, mix_seed_periodic(
                                seed, static_cast<uint64_t>(i),
                                static_cast<uint64_t>(j), seed_row_period,
                                seed_col_period));
            if (accumulate) {
              unit.set_acc(SoftFloat::from_double(
                  c.acc_fmt, C[static_cast<size_t>(i) * ldc + j]));
            }
            for (int k = 0; k < K; ++k)
              unit.step(qa[static_cast<size_t>(i) * K + k],
                        qb[static_cast<size_t>(k) * N + j]);
            C[static_cast<size_t>(i) * ldc + j] =
                static_cast<float>(unit.acc_value());
          }
        }
      },
      threads, /*grain=*/1);
}

void gemm_ref(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, bool accumulate, int threads) {
  ThreadPool::global().parallel_for(
      0, M,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          for (int j = 0; j < N; ++j) {
            float acc = accumulate ? C[static_cast<size_t>(i) * ldc + j] : 0.0f;
            for (int k = 0; k < K; ++k)
              acc += A[static_cast<size_t>(i) * lda + k] *
                     B[static_cast<size_t>(k) * ldb + j];
            C[static_cast<size_t>(i) * ldc + j] = acc;
          }
        }
      },
      threads, /*grain=*/1);
}

}  // namespace srmac
