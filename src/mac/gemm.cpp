#include "mac/gemm.hpp"

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

#include "fpemu/softfloat.hpp"
#include "mac/mac_unit.hpp"

namespace srmac {

namespace {

/// splitmix-style hash for reproducible per-element LFSR seeds.
inline uint64_t mix_seed(uint64_t s, uint64_t i, uint64_t j) {
  uint64_t z = s + 0x9E3779B97F4A7C15ull * (i * 0x100000001B3ull + j + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void parallel_rows(int M, int threads, const std::function<void(int, int)>& fn) {
  int n = threads > 0 ? threads
                      : static_cast<int>(std::thread::hardware_concurrency());
  n = std::clamp(n, 1, std::max(1, M));
  if (n == 1) {
    fn(0, M);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(n);
  const int chunk = (M + n - 1) / n;
  for (int t = 0; t < n; ++t) {
    const int lo = t * chunk, hi = std::min(M, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back(fn, lo, hi);
  }
  for (auto& th : pool) th.join();
}

}  // namespace

void gemm_mac(const MacConfig& cfg, int M, int N, int K, const float* A,
              int lda, const float* B, int ldb, float* C, int ldc,
              bool accumulate, uint64_t seed, int threads) {
  const MacConfig c = cfg.normalized();

  // Quantize operands once (RN into the multiplier input format).
  std::vector<uint32_t> qa(static_cast<size_t>(M) * K);
  std::vector<uint32_t> qb(static_cast<size_t>(K) * N);
  for (int i = 0; i < M; ++i)
    for (int k = 0; k < K; ++k)
      qa[static_cast<size_t>(i) * K + k] =
          SoftFloat::from_double(c.mul_fmt, A[static_cast<size_t>(i) * lda + k]);
  for (int k = 0; k < K; ++k)
    for (int j = 0; j < N; ++j)
      qb[static_cast<size_t>(k) * N + j] =
          SoftFloat::from_double(c.mul_fmt, B[static_cast<size_t>(k) * ldb + j]);

  parallel_rows(M, threads, [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      for (int j = 0; j < N; ++j) {
        MacUnit unit(c, mix_seed(seed, i, j));
        if (accumulate) {
          unit.set_acc(SoftFloat::from_double(
              c.acc_fmt, C[static_cast<size_t>(i) * ldc + j]));
        }
        for (int k = 0; k < K; ++k)
          unit.step(qa[static_cast<size_t>(i) * K + k],
                    qb[static_cast<size_t>(k) * N + j]);
        C[static_cast<size_t>(i) * ldc + j] =
            static_cast<float>(unit.acc_value());
      }
    }
  });
}

void gemm_ref(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, bool accumulate, int threads) {
  parallel_rows(M, threads, [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      for (int j = 0; j < N; ++j) {
        float acc = accumulate ? C[static_cast<size_t>(i) * ldc + j] : 0.0f;
        for (int k = 0; k < K; ++k)
          acc += A[static_cast<size_t>(i) * lda + k] *
                 B[static_cast<size_t>(k) * ldb + j];
        C[static_cast<size_t>(i) * ldc + j] = acc;
      }
    }
  });
}

}  // namespace srmac
