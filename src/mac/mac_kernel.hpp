#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fpemu/value.hpp"
#include "mac/adder_common.hpp"
#include "mac/mac_config.hpp"

namespace srmac {

/// Fused high-throughput emulation of one MAC accumulation chain.
///
/// MacUnit::step pays four costs per accumulation that this kernel
/// eliminates while staying bit-identical (the adders' decoded cores are
/// the *same code* both paths run through):
///
///  1. The accumulator is packed into acc_fmt bits after every add and
///     decoded again by the next one. Here it stays decoded (Unpacked)
///     across the whole K-chain; packing happens once at the end. The
///     per-step rounding points are unchanged — every add still rounds in
///     acc_fmt through the configured adder core.
///  2. The exact multiply + RN conversion into acc_fmt is a pure function
///     of the two operand bit patterns. For FP8-class multiplier formats
///     (width <= 9) it is precomputed into a magnitude-indexed table of
///     decoded addends, built once per (mul_fmt, acc_fmt, subnormals)
///     triple and shared process-wide.
///  3. Random words are consumed from a caller-filled buffer (bulk LFSR
///     fill) instead of one virtual RandomSource::draw per step.
///  4. The adder-kind dispatch is hoisted out of the k-loop.
struct MacAddend {
  uint32_t sig = 0;
  int16_t exp = 0;
  uint8_t cls = 0;            ///< FpClass of the addend
  uint8_t sign_sensitive = 0; ///< 0 only for NaN (canonical sign false)
};

class FusedMacKernel {
 public:
  /// `cfg` is normalized by the constructor; the table (when the multiplier
  /// format is narrow enough) is fetched from the process-wide cache.
  explicit FusedMacKernel(const MacConfig& cfg);

  const MacConfig& config() const { return cfg_; }
  bool has_table() const { return table_ != nullptr; }
  /// True for the SR adders: chain() then needs one random word per step.
  bool needs_rand() const { return cfg_.adder != AdderKind::kRoundNearest; }
  /// LFSR register width matching MacUnit's (max(4, normalized r)).
  int lfsr_width() const { return cfg_.random_bits < 4 ? 4 : cfg_.random_bits; }

  /// The decoded addend the adder sees for operand bits (a, b) in
  /// cfg.mul_fmt: decode(acc_fmt, convert(multiply_exact(a, b))), exactly
  /// as MacUnit::step computes it.
  Unpacked addend(uint32_t a, uint32_t b) const;

  /// Runs acc <- acc (+) a[i]*b[i] for i in [0, n), with the accumulator
  /// held decoded. `rand` must hold n random words (one per step, as drawn
  /// by MacUnit's LFSR) for the SR adders; it is ignored under RN.
  void chain(Unpacked& acc, const uint32_t* a, const uint32_t* b, int n,
             const uint64_t* rand) const;

  /// Lanes per scalar lockstep subgroup. Each accumulation chain is a
  /// serial dependency (acc -> next add, ~30 cycles); interleaving
  /// independent output elements fills the pipeline between those chains.
  static constexpr int kLanes = 4;

  /// Output elements processed together by chain_group: 4 on the scalar
  /// path, 16 (two 8-wide zmm register groups) when one of the AVX-512
  /// kernels is active — every AdderKind has a vector chain (eager-SR,
  /// lazy-SR, RN), gated only on the product table and cpuid. The GEMM
  /// packs B panels and random words group-interleaved at this width.
  int group_width() const { return group_width_; }

  /// Runs group_width() independent chains over a shared A stream:
  /// acc[l] <- acc[l] (+) a[i] * b_ilv[i*G + l], with per-lane random words
  /// rand_ilv[i*G + l] (G = group_width()). Bit-identical to G separate
  /// chain() calls.
  void chain_group(Unpacked* acc, const uint32_t* a, const uint32_t* b_ilv,
                   int n, const uint64_t* rand_ilv) const;

 private:
  template <AdderKind kKind, bool kTable>
  void chain_impl(Unpacked& acc, const uint32_t* a, const uint32_t* b, int n,
                  const uint64_t* rand) const;

  template <AdderKind kKind, bool kTable>
  void chain_group_impl(Unpacked* acc, const uint32_t* a,
                        const uint32_t* b_ilv, int n,
                        const uint64_t* rand_ilv) const;

  Unpacked addend_slow(uint32_t a, uint32_t b) const;
  Unpacked addend_from_table(uint32_t a, uint32_t b) const;

  friend void chain_group_avx512_eager(const FusedMacKernel& kernel,
                                       Unpacked* acc, const uint32_t* a,
                                       const uint32_t* b_ilv, int n,
                                       const uint64_t* rand_ilv);
  friend void chain_group_avx512_lazy(const FusedMacKernel& kernel,
                                      Unpacked* acc, const uint32_t* a,
                                      const uint32_t* b_ilv, int n,
                                      const uint64_t* rand_ilv);
  friend void chain_group_avx512_rn(const FusedMacKernel& kernel,
                                    Unpacked* acc, const uint32_t* a,
                                    const uint32_t* b_ilv, int n,
                                    const uint64_t* rand_ilv);

  int group_width_ = kLanes;
  bool use_avx512_ = false;

  MacConfig cfg_;
  AddParams params_;  ///< precomputed (acc_fmt, r) adder constants
  FpFormat prod_fmt_;
  bool direct_ = false;  ///< product bits feed the adder without conversion
  std::shared_ptr<const std::vector<MacAddend>> table_;
  int mag_bits_ = 0;       ///< magnitude field width of mul_fmt
  uint32_t mag_mask_ = 0;
  uint32_t mul_sign_mask_ = 0;
};

}  // namespace srmac
