// AVX-512 implementations of the fused accumulation chains, one per
// AdderKind: the eager-SR chain (rounding fused into the add) and the
// late-rounding chain shared by lazy-SR and RN (full-width alignment
// window, normalize, then one rounding decision at the cut).
//
// Sixteen independent output chains run in lockstep: two groups of eight
// 64-bit lanes (zmm), interleaved so each group's serial add latency hides
// behind the other's work. Each vector step is a lane-parallel transcription
// of the corresponding adder core's hot path; every rare event — non-finite
// or zero operands, exact cancellation, a subnormal (emin) cut, overflow
// past emax — raises a lane mask and is replayed through the *scalar* core
// for exactly those lanes, so the vector paths are bit-identical to the
// scalar engine by construction (and are covered by the same bit-exactness
// suite).
//
// Lanes whose accumulator is not finite-nonzero (zero at chain start, NaN /
// Inf after saturation) are "parked": held as decoded Unpacked values at
// the side and stepped through the scalar core until they re-enter the
// finite range, at which point they are folded back into the vectors.
#include "mac/mac_kernel.hpp"

// SRMAC_DISABLE_AVX512 (CMake -DSRMAC_DISABLE_AVX512=ON) compiles this TU
// as the non-x86 stub, forcing the scalar lockstep groups everywhere — the
// CI leg that keeps the scalar replay/fallback paths built and tested on
// hosts that would otherwise always take the vector chains.
#if (defined(__x86_64__) || defined(_M_X64)) && !defined(SRMAC_DISABLE_AVX512)

// GCC's AVX-512 intrinsic wrappers pass self-initialized dummy operands to
// the masked builtins, tripping -Wmaybe-uninitialized at -O3 (GCC bug
// 105593). Header-internal false positive; silence it for this TU only.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#include <immintrin.h>

#include "mac/adder_eager_sr.hpp"
#include "mac/adder_lazy_sr.hpp"
#include "mac/adder_rn.hpp"

namespace srmac {

bool mac_kernel_avx512_supported() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512cd");
}

namespace {

struct alignas(64) LaneArrays {
  int64_t sig[16];
  int64_t exp[16];
  int64_t sign[16];
};

}  // namespace

__attribute__((target("avx512f,avx512cd"))) void chain_group_avx512_eager(
    const FusedMacKernel& kernel, Unpacked* acc, const uint32_t* a,
    const uint32_t* b_ilv, int n, const uint64_t* rand_ilv) {
  constexpr int G = 16;
  const AddParams ap = kernel.params_;
  const MacAddend* tab = kernel.table_->data();
  const int p = ap.p;
  const int r = ap.r;
  const int w1 = kernel.cfg_.mul_fmt.width() - 1;  // sign bit position

  // Broadcast constants.
  const __m512i vzero64 = _mm512_setzero_si512();
  const __m512i vone = _mm512_set1_epi64(1);
  const __m512i v63 = _mm512_set1_epi64(63);
  const __m512i vp = _mm512_set1_epi64(p);
  const __m512i vr1 = _mm512_set1_epi64(r - 1);
  const __m512i vemin = _mm512_set1_epi64(ap.emin);
  const __m512i vemax = _mm512_set1_epi64(ap.fmt.emax());
  const __m512i vmask_p = _mm512_set1_epi64(static_cast<int64_t>(ap.mask_p));
  const __m512i vmask_p1 = _mm512_set1_epi64(static_cast<int64_t>(ap.mask_p1));
  const __m512i vmask_r = _mm512_set1_epi64(static_cast<int64_t>(ap.mask_r));
  const __m512i vmask_rm1 =
      _mm512_set1_epi64(static_cast<int64_t>(ap.mask_rm1));
  const __m512i vmask_rm2 =
      _mm512_set1_epi64(static_cast<int64_t>(ap.mask_rm2));
  const __m512i vmask32 = _mm512_set1_epi64(0xffffffffll);
  const __m512i vmagmask = _mm512_set1_epi64(kernel.mag_mask_);
  const __m128i cnt_r = _mm_cvtsi32_si128(r);
  const __m128i cnt_r1 = _mm_cvtsi32_si128(r - 1);
  const __m128i cnt_p = _mm_cvtsi32_si128(p);
  const __m128i cnt_p1 = _mm_cvtsi32_si128(p + 1);
  const __m128i cnt_w1 = _mm_cvtsi32_si128(w1);

  // Lane state: vectors hold unparked (finite-nonzero) accumulators;
  // `spare` holds the decoded value of parked lanes.
  LaneArrays la;
  Unpacked spare[G];
  uint32_t parked = 0;
  for (int l = 0; l < G; ++l) {
    spare[l] = acc[l];
    if (acc[l].is_finite_nonzero()) {
      la.sig[l] = static_cast<int64_t>(acc[l].sig);
      la.exp[l] = acc[l].exp;
      la.sign[l] = acc[l].sign ? 1 : 0;
    } else {
      la.sig[l] = la.exp[l] = la.sign[l] = 0;
      parked |= 1u << l;
    }
  }
  __m512i gsig[2], gexp[2], gsign[2];
  for (int g = 0; g < 2; ++g) {
    gsig[g] = _mm512_load_si512(la.sig + 8 * g);
    gexp[g] = _mm512_load_si512(la.exp + 8 * g);
    gsign[g] = _mm512_load_si512(la.sign + 8 * g);
  }

  for (int i = 0; i < n; ++i) {
    const uint32_t ai = a[i];
    const int64_t abase = static_cast<int64_t>(
        static_cast<uint64_t>(ai & kernel.mag_mask_) << kernel.mag_bits_);
    const __m512i vabase = _mm512_set1_epi64(abase);
    const __m512i vasign =
        _mm512_set1_epi64(static_cast<int64_t>((ai >> w1) & 1u));

    __m512i nsig[2], nexp[2], nsign[2];
    uint32_t bad = parked;
    for (int g = 0; g < 2; ++g) {
      // ---- addend: gather the pre-decoded product, apply the sign -------
      const __m256i b32 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          b_ilv + static_cast<size_t>(i) * G + 8 * g));
      const __m512i bq = _mm512_cvtepu32_epi64(b32);
      const __m512i idx =
          _mm512_or_si512(vabase, _mm512_and_si512(bq, vmagmask));
      const __m512i e = _mm512_i64gather_epi64(idx, tab, 8);
      const __m512i dsig = _mm512_and_si512(e, vmask32);
      const __m512i dexp =
          _mm512_srai_epi64(_mm512_slli_epi64(e, 16), 48);
      const __m512i dcls =
          _mm512_and_si512(_mm512_srli_epi64(e, 48), _mm512_set1_epi64(0xff));
      // finite-nonzero addend: cls in {kSubnormal=1, kNormal=2}
      const __mmask8 dbad = _mm512_cmpgt_epu64_mask(
          _mm512_sub_epi64(dcls, vone), vone);
      const __m512i bsign =
          _mm512_and_si512(_mm512_srl_epi64(bq, cnt_w1), vone);
      const __m512i dsign = _mm512_and_si512(
          _mm512_srli_epi64(e, 56), _mm512_xor_si512(vasign, bsign));

      // ---- random word --------------------------------------------------
      const __m512i R = _mm512_and_si512(
          _mm512_loadu_si512(rand_ilv + static_cast<size_t>(i) * G + 8 * g),
          vmask_r);

      // ---- prepare: magnitude swap, effective op (branch-free) ----------
      const __mmask8 keq = _mm512_cmpeq_epi64_mask(dexp, gexp[g]);
      const __mmask8 swap = static_cast<__mmask8>(
          _mm512_cmpgt_epi64_mask(dexp, gexp[g]) |
          (keq & _mm512_cmpgt_epi64_mask(dsig, gsig[g])));
      const __m512i psign = _mm512_mask_blend_epi64(swap, gsign[g], dsign);
      const __m512i x = _mm512_mask_blend_epi64(swap, gsig[g], dsig);
      const __m512i y = _mm512_mask_blend_epi64(swap, dsig, gsig[g]);
      const __m512i exph = _mm512_mask_blend_epi64(swap, gexp[g], dexp);
      const __m512i d = _mm512_abs_epi64(_mm512_sub_epi64(gexp[g], dexp));
      const __m512i op = _mm512_xor_si512(gsign[g], dsign);
      const __m512i opm = _mm512_sub_epi64(vzero64, op);

      // ---- alignment (variable shifts zero out for d >= 64) -------------
      const __m512i yk =
          _mm512_srlv_epi64(_mm512_sll_epi64(y, cnt_r), d);
      const __m512i Bhi = _mm512_srl_epi64(yk, cnt_r1);
      const __m512i D = _mm512_and_si512(yk, vmask_rm1);

      // ---- sticky-round stage -------------------------------------------
      const __m512i Rlow = _mm512_and_si512(R, vmask_rm2);
      const __m512i Dc =
          _mm512_and_si512(_mm512_xor_si512(D, opm), vmask_rm1);
      const __m512i u = _mm512_add_epi64(
          _mm512_add_epi64(Dc, _mm512_slli_epi64(Rlow, 1)), op);
      const __m512i S1 = _mm512_and_si512(_mm512_srl_epi64(u, cnt_r1), vone);

      // ---- main addition + normalization --------------------------------
      const __m512i Bc =
          _mm512_and_si512(_mm512_xor_si512(Bhi, opm), vmask_p1);
      const __m512i full = _mm512_add_epi64(
          _mm512_add_epi64(_mm512_slli_epi64(x, 1), Bc), S1);
      const __m512i v =
          _mm512_andnot_si512(_mm512_sll_epi64(opm, cnt_p1), full);
      const __mmask8 vzerom = _mm512_cmpeq_epi64_mask(v, vzero64);
      const __m512i msb = _mm512_sub_epi64(v63, _mm512_lzcnt_epi64(v));
      const __m512i s = _mm512_sub_epi64(msb, vp);
      const __mmask8 sneg = _mm512_cmpgt_epi64_mask(vzero64, s);

      // ---- round correction (unified s >= 0 arm; LZD arm blended) -------
      const __m512i sp1 = _mm512_add_epi64(s, vone);
      const __m512i kept_pos =
          _mm512_and_si512(_mm512_srlv_epi64(v, sp1), vmask_p);
      const __m512i t = _mm512_and_si512(
          v, _mm512_sub_epi64(_mm512_sllv_epi64(vone, sp1), vone));
      const __m512i rc_pos = _mm512_srlv_epi64(
          _mm512_add_epi64(t, _mm512_srlv_epi64(R, _mm512_sub_epi64(vr1, s))),
          sp1);
      const __m512i lzm1 =
          _mm512_sub_epi64(_mm512_sub_epi64(vzero64, s), vone);
      const __m512i kept_neg =
          _mm512_and_si512(_mm512_sllv_epi64(v, lzm1), vmask_p);
      __m512i kept = _mm512_mask_blend_epi64(sneg, kept_pos, kept_neg);
      const __m512i rc =
          _mm512_maskz_mov_epi64(static_cast<__mmask8>(~sneg), rc_pos);
      __m512i expz = _mm512_add_epi64(exph, s);
      const __mmask8 eminm = _mm512_cmpgt_epi64_mask(vemin, expz);
      kept = _mm512_add_epi64(kept, rc);
      const __m512i bin = _mm512_srl_epi64(kept, cnt_p);
      kept = _mm512_srlv_epi64(kept, bin);
      expz = _mm512_add_epi64(expz, bin);
      const __mmask8 emaxm = _mm512_cmpgt_epi64_mask(expz, vemax);

      const __mmask8 badg =
          static_cast<__mmask8>(dbad | vzerom | eminm | emaxm);
      bad |= static_cast<uint32_t>(badg) << (8 * g);

      // Commit the vector result on clean lanes; bad lanes keep the old
      // accumulator and are replayed through the scalar core below.
      const __mmask8 keep =
          static_cast<__mmask8>(badg | (parked >> (8 * g)));
      nsig[g] = _mm512_mask_mov_epi64(kept, keep, gsig[g]);
      nexp[g] = _mm512_mask_mov_epi64(expz, keep, gexp[g]);
      nsign[g] = _mm512_mask_mov_epi64(psign, keep, gsign[g]);
    }

    if (bad != 0) [[unlikely]] {
      // Scalar replay for flagged lanes, through the exact same decoded
      // core the scalar engine runs.
      for (int g = 0; g < 2; ++g) {
        _mm512_store_si512(la.sig + 8 * g, nsig[g]);
        _mm512_store_si512(la.exp + 8 * g, nexp[g]);
        _mm512_store_si512(la.sign + 8 * g, nsign[g]);
      }
      for (int l = 0; l < G; ++l) {
        if (!(bad & (1u << l))) continue;
        Unpacked cur;
        if (parked & (1u << l)) {
          cur = spare[l];
        } else {
          cur.sig = static_cast<uint64_t>(la.sig[l]);
          cur.exp = static_cast<int>(la.exp[l]);
          cur.sign = la.sign[l] != 0;
          cur.sig_bits = p;
          cur.cls =
              cur.exp >= ap.emin ? FpClass::kNormal : FpClass::kSubnormal;
        }
        const Unpacked ad =
            kernel.addend(ai, b_ilv[static_cast<size_t>(i) * G + l]);
        const Unpacked res = add_eager_sr_core(
            ap, cur, ad, rand_ilv[static_cast<size_t>(i) * G + l], nullptr);
        if (res.is_finite_nonzero()) {
          la.sig[l] = static_cast<int64_t>(res.sig);
          la.exp[l] = res.exp;
          la.sign[l] = res.sign ? 1 : 0;
          parked &= ~(1u << l);
        } else {
          spare[l] = res;
          parked |= 1u << l;
        }
      }
      for (int g = 0; g < 2; ++g) {
        nsig[g] = _mm512_load_si512(la.sig + 8 * g);
        nexp[g] = _mm512_load_si512(la.exp + 8 * g);
        nsign[g] = _mm512_load_si512(la.sign + 8 * g);
      }
    }
    gsig[0] = nsig[0];
    gsig[1] = nsig[1];
    gexp[0] = nexp[0];
    gexp[1] = nexp[1];
    gsign[0] = nsign[0];
    gsign[1] = nsign[1];
  }

  for (int g = 0; g < 2; ++g) {
    _mm512_store_si512(la.sig + 8 * g, gsig[g]);
    _mm512_store_si512(la.exp + 8 * g, gexp[g]);
    _mm512_store_si512(la.sign + 8 * g, gsign[g]);
  }
  for (int l = 0; l < G; ++l) {
    if (parked & (1u << l)) {
      acc[l] = spare[l];
    } else {
      acc[l].sig = static_cast<uint64_t>(la.sig[l]);
      acc[l].exp = static_cast<int>(la.exp[l]);
      acc[l].sign = la.sign[l] != 0;
      acc[l].sig_bits = p;
      acc[l].cls =
          acc[l].exp >= ap.emin ? FpClass::kNormal : FpClass::kSubnormal;
    }
  }
}

namespace {

// ---------------------------------------------------------------------------
// Late-rounding chain (lazy-SR and RN), the vector transcription of
// add_lazy_sr_core / add_rn_core: align the smaller operand into a K-bit
// extension window below the p+1 adder bits (K = r for lazy, K = 2 plus a
// sticky OR for RN), one full-width add/subtract, LZD normalization, then a
// single rounding decision at the cut — add-R-and-carry on the top r
// fraction bits for lazy, guard/rest/even for RN. Takes the kernel's
// precomputed constants by value (only public kernel members are touched;
// the friend wrappers below extract the private ones).
template <bool kRn>
__attribute__((target("avx512f,avx512cd"))) void chain_group_avx512_late(
    const FusedMacKernel& kernel, const AddParams& ap, const MacAddend* tab,
    uint32_t mag_mask, int mag_bits, int w1, Unpacked* acc, const uint32_t* a,
    const uint32_t* b_ilv, int n, const uint64_t* rand_ilv) {
  constexpr int G = 16;
  const int p = ap.p;
  const int r = ap.r;
  const int K = kRn ? 2 : r;  // extension window below the kept p bits

  // Broadcast constants.
  const __m512i vzero64 = _mm512_setzero_si512();
  const __m512i vone = _mm512_set1_epi64(1);
  const __m512i v63 = _mm512_set1_epi64(63);
  const __m512i v64 = _mm512_set1_epi64(64);
  const __m512i vpm1 = _mm512_set1_epi64(p - 1);
  const __m512i vpK1 = _mm512_set1_epi64(p + K - 1);
  const __m512i vemin = _mm512_set1_epi64(ap.emin);
  const __m512i vemax = _mm512_set1_epi64(ap.fmt.emax());
  [[maybe_unused]] const __m512i vmask_r =
      _mm512_set1_epi64(static_cast<int64_t>(ap.mask_r));
  const __m512i vmask32 = _mm512_set1_epi64(0xffffffffll);
  [[maybe_unused]] const __m512i vmsb63 =
      _mm512_set1_epi64(static_cast<int64_t>(1ull << 63));
  const __m512i vmagmask = _mm512_set1_epi64(mag_mask);
  const __m128i cnt_K = _mm_cvtsi32_si128(K);
  const __m128i cnt_p = _mm_cvtsi32_si128(p);
  [[maybe_unused]] const __m128i cnt_r = _mm_cvtsi32_si128(r);
  [[maybe_unused]] const __m128i cnt_64mr = _mm_cvtsi32_si128(64 - r);
  const __m128i cnt_w1 = _mm_cvtsi32_si128(w1);

  // Lane state: vectors hold unparked (finite-nonzero) accumulators;
  // `spare` holds the decoded value of parked lanes.
  LaneArrays la;
  Unpacked spare[G];
  uint32_t parked = 0;
  for (int l = 0; l < G; ++l) {
    spare[l] = acc[l];
    if (acc[l].is_finite_nonzero()) {
      la.sig[l] = static_cast<int64_t>(acc[l].sig);
      la.exp[l] = acc[l].exp;
      la.sign[l] = acc[l].sign ? 1 : 0;
    } else {
      la.sig[l] = la.exp[l] = la.sign[l] = 0;
      parked |= 1u << l;
    }
  }
  __m512i gsig[2], gexp[2], gsign[2];
  for (int g = 0; g < 2; ++g) {
    gsig[g] = _mm512_load_si512(la.sig + 8 * g);
    gexp[g] = _mm512_load_si512(la.exp + 8 * g);
    gsign[g] = _mm512_load_si512(la.sign + 8 * g);
  }

  for (int i = 0; i < n; ++i) {
    const uint32_t ai = a[i];
    const int64_t abase = static_cast<int64_t>(
        static_cast<uint64_t>(ai & mag_mask) << mag_bits);
    const __m512i vabase = _mm512_set1_epi64(abase);
    const __m512i vasign =
        _mm512_set1_epi64(static_cast<int64_t>((ai >> w1) & 1u));

    __m512i nsig[2], nexp[2], nsign[2];
    uint32_t bad = parked;
    for (int g = 0; g < 2; ++g) {
      // ---- addend: gather the pre-decoded product, apply the sign -------
      const __m256i b32 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          b_ilv + static_cast<size_t>(i) * G + 8 * g));
      const __m512i bq = _mm512_cvtepu32_epi64(b32);
      const __m512i idx =
          _mm512_or_si512(vabase, _mm512_and_si512(bq, vmagmask));
      const __m512i e = _mm512_i64gather_epi64(idx, tab, 8);
      const __m512i dsig = _mm512_and_si512(e, vmask32);
      const __m512i dexp = _mm512_srai_epi64(_mm512_slli_epi64(e, 16), 48);
      const __m512i dcls =
          _mm512_and_si512(_mm512_srli_epi64(e, 48), _mm512_set1_epi64(0xff));
      // finite-nonzero addend: cls in {kSubnormal=1, kNormal=2}
      const __mmask8 dbad =
          _mm512_cmpgt_epu64_mask(_mm512_sub_epi64(dcls, vone), vone);
      const __m512i bsign =
          _mm512_and_si512(_mm512_srl_epi64(bq, cnt_w1), vone);
      const __m512i dsign = _mm512_and_si512(
          _mm512_srli_epi64(e, 56), _mm512_xor_si512(vasign, bsign));

      // ---- prepare: magnitude swap, effective op (branch-free) ----------
      const __mmask8 keq = _mm512_cmpeq_epi64_mask(dexp, gexp[g]);
      const __mmask8 swap = static_cast<__mmask8>(
          _mm512_cmpgt_epi64_mask(dexp, gexp[g]) |
          (keq & _mm512_cmpgt_epi64_mask(dsig, gsig[g])));
      const __m512i psign = _mm512_mask_blend_epi64(swap, gsign[g], dsign);
      const __m512i x = _mm512_mask_blend_epi64(swap, gsig[g], dsig);
      const __m512i y = _mm512_mask_blend_epi64(swap, dsig, gsig[g]);
      const __m512i exph = _mm512_mask_blend_epi64(swap, gexp[g], dexp);
      const __m512i d = _mm512_abs_epi64(_mm512_sub_epi64(gexp[g], dexp));
      const __m512i op = _mm512_xor_si512(gsign[g], dsign);
      const __m512i opm = _mm512_sub_epi64(vzero64, op);

      // ---- alignment into the K-bit window (srlv zeroes for d >= 64; for
      // d in [p+K, 64) the window value underruns to zero by itself, which
      // is exactly the scalar cores' d >= p+K arm) -------------------------
      const __m512i ykfull = _mm512_sll_epi64(y, cnt_K);
      const __m512i B = _mm512_srlv_epi64(ykfull, d);

      // ---- one full-width add/subtract (A - B == A + ~B + 1) -------------
      __m512i S = _mm512_add_epi64(
          _mm512_add_epi64(_mm512_sll_epi64(x, cnt_K),
                           _mm512_xor_si512(B, opm)),
          op);
      [[maybe_unused]] __mmask8 stickym = 0;
      if constexpr (kRn) {
        // Bits shifted past the window OR into the sticky; a subtrahend that
        // dropped sticky bits borrows one window ULP (truncation invariant).
        const __m512i maskd =
            _mm512_sub_epi64(_mm512_sllv_epi64(vone, d), vone);
        stickym = _mm512_test_epi64_mask(ykfull, maskd);
        S = _mm512_mask_sub_epi64(
            S, _mm512_test_epi64_mask(op, vone) & stickym, S, vone);
      }
      const __mmask8 vzerom = _mm512_cmpeq_epi64_mask(S, vzero64);

      // ---- normalization (LZD) -------------------------------------------
      const __m512i msb = _mm512_sub_epi64(v63, _mm512_lzcnt_epi64(S));
      const __m512i fw = _mm512_sub_epi64(msb, vpm1);
      const __mmask8 fwneg = _mm512_cmpgt_epi64_mask(vzero64, fw);
      __m512i sig = _mm512_mask_blend_epi64(
          fwneg, _mm512_srlv_epi64(S, fw),
          _mm512_sllv_epi64(S, _mm512_sub_epi64(vzero64, fw)));
      // Discarded fraction, left-aligned at bit 63 (sllv count >= 64 for
      // fw <= 0 gives the scalar cores' frac64 = 0).
      const __m512i frac = _mm512_sllv_epi64(S, _mm512_sub_epi64(v64, fw));
      __m512i expz = _mm512_add_epi64(exph, _mm512_sub_epi64(msb, vpK1));
      const __mmask8 eminm = _mm512_cmpgt_epi64_mask(vemin, expz);

      // ---- one rounding decision at the cut ------------------------------
      if constexpr (kRn) {
        // RN-even on (guard, rest | sticky, lsb).
        const __mmask8 gm = _mm512_test_epi64_mask(frac, vmsb63);
        const __mmask8 restm =
            _mm512_cmpneq_epi64_mask(_mm512_slli_epi64(frac, 1), vzero64);
        const __mmask8 lsbm = _mm512_test_epi64_mask(sig, vone);
        const __mmask8 upm =
            gm & static_cast<__mmask8>(restm | stickym | lsbm);
        sig = _mm512_mask_add_epi64(sig, upm, sig, vone);
      } else {
        // Add-R-and-carry on the top r fraction bits (paper Fig. 1 scheme).
        const __m512i R = _mm512_and_si512(
            _mm512_loadu_si512(rand_ilv + static_cast<size_t>(i) * G + 8 * g),
            vmask_r);
        const __m512i fr = _mm512_srl_epi64(frac, cnt_64mr);
        const __m512i up = _mm512_srl_epi64(_mm512_add_epi64(fr, R), cnt_r);
        sig = _mm512_add_epi64(sig, up);
      }
      const __m512i bin = _mm512_srl_epi64(sig, cnt_p);
      sig = _mm512_srlv_epi64(sig, bin);
      expz = _mm512_add_epi64(expz, bin);
      const __mmask8 emaxm = _mm512_cmpgt_epi64_mask(expz, vemax);

      const __mmask8 badg =
          static_cast<__mmask8>(dbad | vzerom | eminm | emaxm);
      bad |= static_cast<uint32_t>(badg) << (8 * g);

      // Commit the vector result on clean lanes; bad lanes keep the old
      // accumulator and are replayed through the scalar core below.
      const __mmask8 keep = static_cast<__mmask8>(badg | (parked >> (8 * g)));
      nsig[g] = _mm512_mask_mov_epi64(sig, keep, gsig[g]);
      nexp[g] = _mm512_mask_mov_epi64(expz, keep, gexp[g]);
      nsign[g] = _mm512_mask_mov_epi64(psign, keep, gsign[g]);
    }

    if (bad != 0) [[unlikely]] {
      // Scalar replay for flagged lanes, through the exact same decoded
      // core the scalar engine runs.
      for (int g = 0; g < 2; ++g) {
        _mm512_store_si512(la.sig + 8 * g, nsig[g]);
        _mm512_store_si512(la.exp + 8 * g, nexp[g]);
        _mm512_store_si512(la.sign + 8 * g, nsign[g]);
      }
      for (int l = 0; l < G; ++l) {
        if (!(bad & (1u << l))) continue;
        Unpacked cur;
        if (parked & (1u << l)) {
          cur = spare[l];
        } else {
          cur.sig = static_cast<uint64_t>(la.sig[l]);
          cur.exp = static_cast<int>(la.exp[l]);
          cur.sign = la.sign[l] != 0;
          cur.sig_bits = p;
          cur.cls =
              cur.exp >= ap.emin ? FpClass::kNormal : FpClass::kSubnormal;
        }
        const Unpacked ad =
            kernel.addend(ai, b_ilv[static_cast<size_t>(i) * G + l]);
        const Unpacked res =
            kRn ? add_rn_core(ap, cur, ad, nullptr)
                : add_lazy_sr_core(
                      ap, cur, ad,
                      rand_ilv[static_cast<size_t>(i) * G + l], nullptr);
        if (res.is_finite_nonzero()) {
          la.sig[l] = static_cast<int64_t>(res.sig);
          la.exp[l] = res.exp;
          la.sign[l] = res.sign ? 1 : 0;
          parked &= ~(1u << l);
        } else {
          spare[l] = res;
          parked |= 1u << l;
        }
      }
      for (int g = 0; g < 2; ++g) {
        nsig[g] = _mm512_load_si512(la.sig + 8 * g);
        nexp[g] = _mm512_load_si512(la.exp + 8 * g);
        nsign[g] = _mm512_load_si512(la.sign + 8 * g);
      }
    }
    gsig[0] = nsig[0];
    gsig[1] = nsig[1];
    gexp[0] = nexp[0];
    gexp[1] = nexp[1];
    gsign[0] = nsign[0];
    gsign[1] = nsign[1];
  }

  for (int g = 0; g < 2; ++g) {
    _mm512_store_si512(la.sig + 8 * g, gsig[g]);
    _mm512_store_si512(la.exp + 8 * g, gexp[g]);
    _mm512_store_si512(la.sign + 8 * g, gsign[g]);
  }
  for (int l = 0; l < G; ++l) {
    if (parked & (1u << l)) {
      acc[l] = spare[l];
    } else {
      acc[l].sig = static_cast<uint64_t>(la.sig[l]);
      acc[l].exp = static_cast<int>(la.exp[l]);
      acc[l].sign = la.sign[l] != 0;
      acc[l].sig_bits = p;
      acc[l].cls =
          acc[l].exp >= ap.emin ? FpClass::kNormal : FpClass::kSubnormal;
    }
  }
}

}  // namespace

void chain_group_avx512_lazy(const FusedMacKernel& kernel, Unpacked* acc,
                             const uint32_t* a, const uint32_t* b_ilv, int n,
                             const uint64_t* rand_ilv) {
  chain_group_avx512_late<false>(kernel, kernel.params_, kernel.table_->data(),
                                 kernel.mag_mask_, kernel.mag_bits_,
                                 kernel.cfg_.mul_fmt.width() - 1, acc, a,
                                 b_ilv, n, rand_ilv);
}

void chain_group_avx512_rn(const FusedMacKernel& kernel, Unpacked* acc,
                           const uint32_t* a, const uint32_t* b_ilv, int n,
                           const uint64_t* rand_ilv) {
  chain_group_avx512_late<true>(kernel, kernel.params_, kernel.table_->data(),
                                kernel.mag_mask_, kernel.mag_bits_,
                                kernel.cfg_.mul_fmt.width() - 1, acc, a, b_ilv,
                                n, rand_ilv);
}

}  // namespace srmac

#else  // !x86-64 or SRMAC_DISABLE_AVX512

namespace srmac {

bool mac_kernel_avx512_supported() { return false; }

void chain_group_avx512_eager(const FusedMacKernel&, Unpacked*,
                              const uint32_t*, const uint32_t*, int,
                              const uint64_t*) {}

void chain_group_avx512_lazy(const FusedMacKernel&, Unpacked*,
                             const uint32_t*, const uint32_t*, int,
                             const uint64_t*) {}

void chain_group_avx512_rn(const FusedMacKernel&, Unpacked*, const uint32_t*,
                           const uint32_t*, int, const uint64_t*) {}

}  // namespace srmac

#endif
