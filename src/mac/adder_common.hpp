#pragma once

#include <cstdint>

#include "fpemu/format.hpp"
#include "fpemu/value.hpp"
#include "rng/random_source.hpp"

namespace srmac {

/// Introspection record filled by the adder models; used by the Sec. III-B
/// validation harness and the unit tests to reason about execution traces.
struct AdderTrace {
  bool special = false;       ///< NaN/Inf/zero shortcut taken
  bool far_path = false;      ///< |e_x - e_y| > 1
  bool effective_sub = false; ///< signs differ (op flag)
  bool carry_out = false;     ///< significand addition produced a carry
  int norm_shift = 0;         ///< left-shift applied during normalization
  bool exact = false;         ///< no nonzero discarded bits: rounding is a no-op
  bool round_up = false;      ///< the rounding stage incremented the result
  uint64_t f_r = 0;           ///< discarded field at the rounding cut
  bool subnormal_out = false; ///< result landed in the subnormal range
};

/// Operands after the swap/compare stage, with specials resolved.
struct PreparedAdd {
  bool special = false;
  uint32_t special_bits = 0;  ///< result if special

  bool sign = false;   ///< sign of the larger operand (= result sign)
  bool op = false;     ///< effective subtraction
  int exp = 0;         ///< exponent of the larger operand
  uint64_t x = 0;      ///< larger significand, p bits, MSB set
  uint64_t y = 0;      ///< smaller significand, p bits, MSB set
  int d = 0;           ///< exponent difference >= 0
};

/// Decodes, classifies and orders the operands of `a + b` in `fmt`. Subnormal
/// inputs are normalized into the internal exponent range when supported and
/// flushed to zero otherwise. When one operand is zero the other is returned
/// through the `special` path (the sum is exact: no rounding needed).
PreparedAdd prepare_add(const FpFormat& fmt, uint32_t a, uint32_t b);

/// Final packing shared by all adder models. The adder hands over the
/// normalized positive result: `sig` has exactly p bits (MSB set) with MSB
/// weight 2^exp, and `frac64` holds the discarded fraction left-aligned at
/// bit 63 (bits below the ULP). Behaviour:
///  * exp > emax: overflow to infinity.
///  * exp < emin, subnormals off: flush to zero.
///  * exp < emin, subnormals on: denormalize (shift the cut) and re-round at
///    the subnormal ULP — with RN semantics when `rn_mode`, else with the
///    add-R-and-carry SR scheme on `r` bits of `rand_word`.
///  * otherwise: round at the normal cut. For `rn_mode` the decision uses
///    guard/rest/even on (frac64, sticky); for SR it adds the top r bits of
///    frac64 to `rand_word` and rounds up on carry (paper Fig. 1 scheme).
/// `already_rounded` skips the in-range rounding decision (the eager adder
/// rounds internally) but still handles range. Returns packed bits.
uint32_t pack_round(const FpFormat& fmt, bool sign, int exp, uint64_t sig,
                    uint64_t frac64, bool sticky, bool rn_mode, int r,
                    uint64_t rand_word, bool already_rounded,
                    AdderTrace* trace);

}  // namespace srmac
