#pragma once

#include <cassert>
#include <cstdint>

#include "fpemu/format.hpp"
#include "fpemu/value.hpp"
#include "rng/random_source.hpp"

namespace srmac {

/// Introspection record filled by the adder models; used by the Sec. III-B
/// validation harness and the unit tests to reason about execution traces.
struct AdderTrace {
  bool special = false;       ///< NaN/Inf/zero shortcut taken
  bool far_path = false;      ///< |e_x - e_y| > 1
  bool effective_sub = false; ///< signs differ (op flag)
  bool carry_out = false;     ///< significand addition produced a carry
  int norm_shift = 0;         ///< left-shift applied during normalization
  bool exact = false;         ///< no nonzero discarded bits: rounding is a no-op
  bool round_up = false;      ///< the rounding stage incremented the result
  uint64_t f_r = 0;           ///< discarded field at the rounding cut
  bool subnormal_out = false; ///< result landed in the subnormal range
};

/// Operands after the swap/compare stage, with specials resolved.
struct PreparedAdd {
  bool special = false;
  uint32_t special_bits = 0;  ///< result if special

  bool sign = false;   ///< sign of the larger operand (= result sign)
  bool op = false;     ///< effective subtraction
  int exp = 0;         ///< exponent of the larger operand
  uint64_t x = 0;      ///< larger significand, p bits, MSB set
  uint64_t y = 0;      ///< smaller significand, p bits, MSB set
  int d = 0;           ///< exponent difference >= 0
};

/// Decodes, classifies and orders the operands of `a + b` in `fmt`. Subnormal
/// inputs are normalized into the internal exponent range when supported and
/// flushed to zero otherwise. When one operand is zero the other is returned
/// through the `special` path (the sum is exact: no rounding needed).
PreparedAdd prepare_add(const FpFormat& fmt, uint32_t a, uint32_t b);

/// ---------------------------------------------------------------------------
/// Decoded-domain adder plumbing.
///
/// The packed entry points (prepare_add / pack_round and the three adders)
/// decode their uint32 operands, run the arithmetic, and re-encode. The fused
/// GEMM kernel instead keeps the accumulator decoded across a whole K-chain;
/// these `_u` forms are the shared cores both paths run through, so the fast
/// path is bit-identical to the packed reference by construction.
/// ---------------------------------------------------------------------------

/// `prepare_add` on operands that are already decoded; the special-case
/// result is returned decoded in `special_val` instead of packed.
struct PreparedAddU {
  bool special = false;
  Unpacked special_val{};

  bool sign = false;   ///< sign of the larger operand (= result sign)
  bool op = false;     ///< effective subtraction
  int exp = 0;         ///< exponent of the larger operand
  uint64_t x = 0;      ///< larger significand, p bits, MSB set
  uint64_t y = 0;      ///< smaller significand, p bits, MSB set
  int d = 0;           ///< exponent difference >= 0
};

inline uint64_t adder_low_ones(int n) {
  return n <= 0 ? 0 : ((n >= 64) ? ~0ull : ((1ull << n) - 1));
}

/// Loop-invariant constants of one (fmt, r) adder configuration. The fused
/// kernel precomputes these once per GEMM so the per-step code does no mask
/// arithmetic; the packed wrappers build them per call (a handful of shifts,
/// immaterial there).
struct AddParams {
  FpFormat fmt;  ///< retained for the cold subnormal / fallback paths
  int p = 0;
  int r = 0;
  int emin = 0;
  uint64_t mask_p = 0;    ///< low_ones(p)
  uint64_t mask_p1 = 0;   ///< low_ones(p + 1)
  uint64_t mask_r = 0;    ///< low_ones(r)
  uint64_t mask_rm1 = 0;  ///< low_ones(r - 1)
  uint64_t mask_rm2 = 0;  ///< low_ones(r - 2)

  AddParams(const FpFormat& f, int rr)
      : fmt(f),
        p(f.precision()),
        r(rr),
        emin(f.emin()),
        mask_p(adder_low_ones(p)),
        mask_p1(adder_low_ones(p + 1)),
        mask_r(adder_low_ones(r)),
        mask_rm1(adder_low_ones(r - 1)),
        mask_rm2(adder_low_ones(r - 2)) {}
};

inline PreparedAddU prepare_add_u(const FpFormat& fmt, const Unpacked& ua,
                                  const Unpacked& ub) {
  PreparedAddU p;
  if (ua.is_finite_nonzero() && ub.is_finite_nonzero()) [[likely]] {
    // Swap so |x| >= |y| (exponent first, significand as tiebreak). The
    // compare and the field selects are branch-free value moves (cmov):
    // which operand is larger is unpredictable in accumulation chains, and
    // selecting through pointers would force the operands out of registers.
    const bool swap =
        (ub.exp > ua.exp) | ((ub.exp == ua.exp) & (ub.sig > ua.sig));
    p.sign = swap ? ub.sign : ua.sign;
    p.op = ua.sign != ub.sign;
    p.exp = swap ? ub.exp : ua.exp;
    p.x = swap ? ub.sig : ua.sig;
    p.y = swap ? ua.sig : ub.sig;
    p.d = swap ? ub.exp - ua.exp : ua.exp - ub.exp;
    return p;
  }
  if (ua.cls == FpClass::kNaN || ub.cls == FpClass::kNaN) {
    p.special = true;
    p.special_val = unpacked_nan(fmt);
    return p;
  }
  if (ua.cls == FpClass::kInf || ub.cls == FpClass::kInf) {
    p.special = true;
    if (ua.cls == FpClass::kInf && ub.cls == FpClass::kInf &&
        ua.sign != ub.sign)
      p.special_val = unpacked_nan(fmt);
    else
      p.special_val = unpacked_inf(
          fmt, ua.cls == FpClass::kInf ? ua.sign : ub.sign);
    return p;
  }
  if (ua.cls == FpClass::kZero && ub.cls == FpClass::kZero) {
    p.special = true;
    p.special_val = unpacked_zero(fmt, ua.sign && ub.sign);
    return p;
  }
  // One operand is zero: x + 0 is exact; the nonzero operand is already in
  // canonical decoded form.
  p.special = true;
  p.special_val = ua.cls == FpClass::kZero ? ub : ua;
  return p;
}

/// One rounding decision at an arbitrary cut: RN-even on (g, rest, lsb) or
/// the add-R-and-carry SR scheme on the top r fraction bits.
inline bool round_decision(uint64_t lsb, uint64_t frac64, bool sticky,
                           bool rn_mode, int r, uint64_t rand_word) {
  if (rn_mode) {
    const bool g = (frac64 >> 63) != 0;
    const bool rest = (frac64 << 1) != 0 || sticky;
    return g && (rest || (lsb & 1));
  }
  const uint64_t fr = r >= 64 ? frac64 : (frac64 >> (64 - r));
  const uint64_t rmask = r >= 64 ? ~0ull : ((1ull << r) - 1);
  return (fr + (rand_word & rmask)) >= (1ull << r);
}

/// Decoded-result form of pack_round (same contract, see below); pack_round
/// is the thin encode_unpacked() wrapper around this.
inline Unpacked round_unpacked_core(const AddParams& ap, bool sign, int exp,
                                    uint64_t sig, uint64_t frac64, bool sticky,
                                    bool rn_mode, uint64_t rand_word,
                                    bool already_rounded, AdderTrace* trace) {
  const FpFormat& fmt = ap.fmt;
  const int p = ap.p;
  const int r = ap.r;
  assert((sig >> (p - 1)) == 1 &&
         "round_unpacked expects a normalized p-bit significand");

  if (exp < ap.emin) [[unlikely]] {
    if (!fmt.subnormals) {
      if (trace) trace->subnormal_out = true;
      return unpacked_zero(fmt, sign);
    }
    if (trace) trace->subnormal_out = true;
    // Denormalize: shift the cut right by sh, folding the displaced bits
    // into the fraction, then round once at the subnormal ULP. (The eager
    // adder also routes through here: a denormalized cut invalidates its
    // pre-aligned rounding, so the full random word is re-applied.)
    const int sh = fmt.emin() - exp;
    uint64_t kept;
    if (sh >= 64) {
      kept = 0;
      sticky |= sig != 0 || frac64 != 0;
      frac64 = 0;
    } else {
      // kept = sig >> sh (zero when sh >= p); the displaced low bits become
      // the new fraction. Pre-existing fraction bits sit deeper than the new
      // 64-bit window can express exactly; they fold into sticky (harmless
      // for RN, and below the top-r field for every r <= 64 - sh we use).
      kept = sig >> sh;
      sticky |= frac64 != 0;
      frac64 = sig << (64 - sh);
    }
    const bool up = round_decision(kept, frac64, sticky, rn_mode, r, rand_word);
    const uint64_t res = kept + (up ? 1u : 0u);
    if (trace) {
      trace->round_up = up;
      trace->exact = frac64 == 0 && !sticky;
    }
    if (res == 0) return unpacked_zero(fmt, sign);
    if (res >> fmt.man_bits) return unpacked_normal(fmt, sign, fmt.emin(), res);
    return unpacked_subnormal(fmt, sign, res);
  }

  if (!already_rounded) {
    const bool up = round_decision(sig, frac64, sticky, rn_mode, r, rand_word);
    if (trace) {
      trace->round_up = up;
      trace->exact = frac64 == 0 && !sticky;
      trace->f_r = rn_mode || r >= 64 ? frac64 : (frac64 >> (64 - r));
    }
    sig += up ? 1u : 0u;
    if (sig >> p) {  // rounded into the next binade
      sig >>= 1;
      exp += 1;
    }
  }
  if (exp > fmt.emax()) [[unlikely]] return unpacked_inf(fmt, sign);
  return unpacked_normal(fmt, sign, exp, sig);
}

inline Unpacked round_unpacked(const FpFormat& fmt, bool sign, int exp,
                               uint64_t sig, uint64_t frac64, bool sticky,
                               bool rn_mode, int r, uint64_t rand_word,
                               bool already_rounded, AdderTrace* trace) {
  return round_unpacked_core(AddParams(fmt, r), sign, exp, sig, frac64, sticky,
                             rn_mode, rand_word, already_rounded, trace);
}

/// Final packing shared by all adder models. The adder hands over the
/// normalized positive result: `sig` has exactly p bits (MSB set) with MSB
/// weight 2^exp, and `frac64` holds the discarded fraction left-aligned at
/// bit 63 (bits below the ULP). Behaviour:
///  * exp > emax: overflow to infinity.
///  * exp < emin, subnormals off: flush to zero.
///  * exp < emin, subnormals on: denormalize (shift the cut) and re-round at
///    the subnormal ULP — with RN semantics when `rn_mode`, else with the
///    add-R-and-carry SR scheme on `r` bits of `rand_word`.
///  * otherwise: round at the normal cut. For `rn_mode` the decision uses
///    guard/rest/even on (frac64, sticky); for SR it adds the top r bits of
///    frac64 to `rand_word` and rounds up on carry (paper Fig. 1 scheme).
/// `already_rounded` skips the in-range rounding decision (the eager adder
/// rounds internally) but still handles range. Returns packed bits.
uint32_t pack_round(const FpFormat& fmt, bool sign, int exp, uint64_t sig,
                    uint64_t frac64, bool sticky, bool rn_mode, int r,
                    uint64_t rand_word, bool already_rounded,
                    AdderTrace* trace);

}  // namespace srmac
