#include "mac/dot.hpp"

#include <cassert>

#include "fpemu/softfloat.hpp"
#include "mac/mac_unit.hpp"

namespace srmac {

std::vector<uint32_t> quantize_vector(const FpFormat& fmt,
                                      std::span<const float> v) {
  std::vector<uint32_t> out(v.size());
  for (size_t i = 0; i < v.size(); ++i)
    out[i] = SoftFloat::from_double(fmt, static_cast<double>(v[i]));
  return out;
}

DotResult dot_mac_bits(const MacConfig& cfg, std::span<const uint32_t> a,
                       std::span<const uint32_t> b, uint64_t seed) {
  assert(a.size() == b.size());
  const MacConfig c = cfg.normalized();
  MacUnit unit(c, seed);
  DotResult res;
  for (size_t i = 0; i < a.size(); ++i) {
    unit.step(a[i], b[i]);
    res.reference += SoftFloat::to_double(c.mul_fmt, a[i]) *
                     SoftFloat::to_double(c.mul_fmt, b[i]);
  }
  res.acc_bits = unit.acc();
  res.value = unit.acc_value();
  return res;
}

DotResult dot_mac(const MacConfig& cfg, std::span<const float> a,
                  std::span<const float> b, uint64_t seed) {
  const MacConfig c = cfg.normalized();
  const auto qa = quantize_vector(c.mul_fmt, a);
  const auto qb = quantize_vector(c.mul_fmt, b);
  return dot_mac_bits(c, qa, qb, seed);
}

}  // namespace srmac
