#pragma once

#include <cstdint>

#include "mac/adder_common.hpp"

namespace srmac {

/// Dual-path floating-point adder with round-to-nearest-even (the paper's
/// baseline configuration, Sec. III-A items (i)-(v)).
///
/// RTL-level model: bounded alignment shifter keeping guard and round bits
/// plus a sticky OR of everything shifted past them, one shared integer
/// adder/subtractor, LZD-driven normalization, RN-even rounding. Bit-exact
/// against the golden SoftFloat RN addition (validated in tests).
uint32_t add_rn(const FpFormat& fmt, uint32_t a, uint32_t b,
                AdderTrace* trace = nullptr);

}  // namespace srmac
