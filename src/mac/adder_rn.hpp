#pragma once

#include <cstdint>

#include "mac/adder_common.hpp"

namespace srmac {

/// Dual-path floating-point adder with round-to-nearest-even (the paper's
/// baseline configuration, Sec. III-A items (i)-(v)).
///
/// RTL-level model: bounded alignment shifter keeping guard and round bits
/// plus a sticky OR of everything shifted past them, one shared integer
/// adder/subtractor, LZD-driven normalization, RN-even rounding. Bit-exact
/// against the golden SoftFloat RN addition (validated in tests).
///
/// Contract:
///  * Operand packing — `a` and `b` are bit patterns in `fmt` (sign /
///    exponent / mantissa fields, subnormals honored per fmt.subnormals);
///    the return value is the packed sum in the same format. NaN in, NaN
///    out (the canonical fmt.nan_bits()); opposite infinities give NaN;
///    exact cancellation gives +0.
///  * Random bits — none; RN consumes no randomness.
///  * Trace — when non-null, `trace` is filled with the datapath events of
///    this one addition: special shortcut, far path (|d| > 1), effective
///    subtraction, carry out, normalization shift, exactness, round-up, and
///    the discarded field at the cut (AdderTrace fields in adder_common.hpp).
uint32_t add_rn(const FpFormat& fmt, uint32_t a, uint32_t b,
                AdderTrace* trace = nullptr);

/// Decoded-operand core of add_rn; the packed entry point is the
/// decode/encode wrapper around this, and the fused GEMM kernel calls it
/// directly with its decoded accumulator (bit-identical by construction).
///
/// Contract: `ua` / `ub` are canonical decoded values (exactly the forms
/// decode() produces — normalized significands, subnormal inputs carried
/// with exp < emin, specials by class); the result is returned in the same
/// canonical form and round-trips bit-for-bit through encode_unpacked().
/// The AddParams carry the precomputed constants of the format (r unused);
/// randomness and trace as in add_rn above.
inline Unpacked add_rn_core(const AddParams& ap, const Unpacked& ua,
                            const Unpacked& ub, AdderTrace* trace = nullptr) {
  const FpFormat& fmt = ap.fmt;
  const int p = ap.p;
  const PreparedAddU pr = prepare_add_u(fmt, ua, ub);
  if (pr.special) [[unlikely]] {
    if (trace) trace->special = true;
    return pr.special_val;
  }
  constexpr int K = 2;  // guard + round extension bits

  if (trace) {
    trace->far_path = pr.d > 1;
    trace->effective_sub = pr.op;
  }

  // Alignment with bounded shifter: keep K extension bits, OR the rest into
  // the sticky bit (computed during stages (ii)-(iii) per the paper).
  const uint64_t A = pr.x << K;
  uint64_t B;
  bool sticky;
  if (pr.d >= p + K) {
    B = 0;
    sticky = pr.y != 0;
  } else {
    const uint64_t yk = pr.y << K;
    B = yk >> pr.d;
    sticky = (yk & ((1ull << pr.d) - 1)) != 0;  // d < p + 2 <= 26 here
  }

  // Single shared adder/subtractor, with the add/subtract select written
  // branch-free (the op flag is data-dependent and effectively random in
  // accumulation chains). When sticky bits were dropped from the subtrahend
  // the window value underestimates it; borrow one window ULP so the
  // retained difference is a truncation of the exact one.
  const uint64_t opmask = pr.op ? ~0ull : 0ull;
  const uint64_t S = A + (B ^ opmask) + (pr.op ? 1u : 0u) -
                     ((pr.op && sticky) ? 1u : 0u);
  if (S == 0) {
    assert(!sticky);
    return unpacked_zero(fmt, false);  // exact cancellation gives +0
  }

  const int msb = 63 - __builtin_clzll(S);
  if (trace) {
    trace->carry_out = !pr.op && msb == p + K;
    trace->norm_shift = (p + K - 1) - msb;
  }
  // Normalize: right shift when the sum grew past p bits, left shift after
  // deep cancellation (LZD path).
  const int fw = msb - (p - 1);  // fraction width (negative: left shift)
  const uint64_t sig_p = fw >= 0 ? (S >> fw) : (S << -fw);
  const uint64_t frac64 = fw >= 1 ? (S << (64 - fw)) : 0;
  const int exp_z = pr.exp + (msb - (p + K - 1));

  return round_unpacked_core(ap, pr.sign, exp_z, sig_p, frac64, sticky,
                             /*rn_mode=*/true, /*rand_word=*/0,
                             /*already_rounded=*/false, trace);
}

/// Decoded-operand entry point: add_rn_core with the AddParams built per
/// call (same contract; use the _core form with precomputed params in
/// loops).
inline Unpacked add_rn_u(const FpFormat& fmt, const Unpacked& ua,
                         const Unpacked& ub, AdderTrace* trace = nullptr) {
  return add_rn_core(AddParams(fmt, 0), ua, ub, trace);
}

}  // namespace srmac
