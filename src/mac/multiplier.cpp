#include "mac/multiplier.hpp"

#include <cassert>

#include "fpemu/value.hpp"

namespace srmac {

uint32_t multiply_exact(const FpFormat& in, uint32_t a, uint32_t b) {
  const FpFormat out = product_format(in);
  const Unpacked ua = decode(in, a), ub = decode(in, b);
  const bool sign = ua.sign != ub.sign;

  if (ua.cls == FpClass::kNaN || ub.cls == FpClass::kNaN) return out.nan_bits();
  if (ua.cls == FpClass::kInf || ub.cls == FpClass::kInf) {
    if (ua.cls == FpClass::kZero || ub.cls == FpClass::kZero)
      return out.nan_bits();
    return encode_inf(out, sign);
  }
  if (ua.cls == FpClass::kZero || ub.cls == FpClass::kZero)
    return encode_zero(out, sign);

  // Exact significand product: p_m x p_m -> at most 2*p_m bits, which is
  // exactly the output precision p_a. One normalization shift at most.
  [[maybe_unused]] const int pm = in.precision();
  const int pa = out.precision();
  assert(pa == 2 * pm);
  uint64_t prod = ua.sig * ub.sig;  // in [2^(2pm-2), 2^(2pm))
  int exp = ua.exp + ub.exp;
  if (prod >> (pa - 1)) {
    // MSB at bit pa-1 already (product in [2,4)): exponent absorbs it.
    exp += 1;
  } else {
    prod <<= 1;  // product in [1,2): align MSB to bit pa-1
  }
  // Now prod has its MSB at bit pa-1 and carries weight 2^exp.

  if (exp > out.emax()) return encode_inf(out, sign);  // cannot happen for normal inputs
  if (exp < out.emin()) {
    // Subnormal product (only reachable with subnormal inputs). The shift
    // below never discards a set bit for the paper's p_a = 2*p_m formats:
    // the product of two values with >= 2^(emin-M) granularity is a multiple
    // of the output subnormal ULP (verified exhaustively in tests).
    const int sh = out.emin() - exp;
    if (sh >= pa) return encode_zero(out, sign);
    assert((prod & ((1ull << sh) - 1)) == 0 && "inexact subnormal product");
    const uint64_t man = prod >> sh;
    if (man >> out.man_bits)
      return encode_normal(out, sign, out.emin(), man);
    return encode_subnormal(out, sign, static_cast<uint32_t>(man));
  }
  return encode_normal(out, sign, exp, prod);
}

}  // namespace srmac
