#pragma once

#include <cstdint>
#include <memory>

#include "mac/mac_config.hpp"
#include "mac/adder_common.hpp"
#include "rng/lfsr.hpp"

namespace srmac {

/// Bit-accurate model of the paper's MAC unit (Fig. 2): an exact multiplier
/// feeding an SR-enabled (or RN) accumulator adder, with an r-bit Galois
/// LFSR running alongside as the random source.
///
/// `step(a, b)` performs acc <- acc (+) a*b where a, b are bit patterns in
/// cfg.mul_fmt and acc is held in cfg.acc_fmt. The multiplier result is
/// exact; rounding happens only in the adder (stochastic for the SR kinds).
class MacUnit {
 public:
  explicit MacUnit(const MacConfig& cfg, uint64_t lfsr_seed = 0xACE1u);

  /// One multiply-accumulate step; returns the new accumulator bits.
  uint32_t step(uint32_t a, uint32_t b);

  /// Adds a value already in accumulator format (used for bias terms and
  /// by the GEMM tiling); rounding mode follows the configuration.
  uint32_t accumulate(uint32_t addend_acc_fmt);

  void set_acc(uint32_t acc_bits) { acc_ = acc_bits; }
  uint32_t acc() const { return acc_; }
  double acc_value() const;

  const MacConfig& config() const { return cfg_; }
  const AdderTrace& last_trace() const { return trace_; }
  /// Register width of the per-unit LFSR (max(4, normalized random_bits)).
  int lfsr_width() const { return lfsr_.width(); }

  /// Stateless single addition in the configured adder (exposed for tests
  /// and the Sec. III-B harness).
  uint32_t add(uint32_t x, uint32_t y, uint64_t rand_word,
               AdderTrace* trace = nullptr) const;

 private:
  MacConfig cfg_;
  FpFormat prod_fmt_;
  bool widening_exact_;  ///< acc format superset of product format
  uint32_t acc_ = 0;
  GaloisLfsr lfsr_;
  AdderTrace trace_;
};

}  // namespace srmac
