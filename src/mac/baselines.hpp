#pragma once

#include <cstdint>

#include "fpemu/format.hpp"
#include "mac/mac_config.hpp"
#include "rng/random_source.hpp"

namespace srmac {

/// Related-work accumulator baselines the paper positions itself against.
/// They share the MAC interface shape (step(a, b) over mul-format bit
/// patterns) so the ablation benches can sweep accumulator designs with
/// everything else held fixed.

/// Rounding applied when the exact FP8xFP8 product is converted into the
/// fixed-point accumulator grid.
enum class FixedRounding {
  kTruncate,       ///< drop bits below the LSB (cheapest hardware)
  kRoundNearest,   ///< RN with ties away (adder + compare)
  kStochastic,     ///< add r random bits, keep the carry (ESRU-style [17])
};

/// Fixed-point accumulator MAC (the design point of [10] and the integer-SR
/// line of work [14][16][17]): an FP8-class multiplier feeding a W-bit
/// two's-complement accumulator with F fractional bits, saturating at the
/// rails. Dynamic range is fixed at design time — the hardware is cheaper
/// than any FP adder but the usable input scale is narrow, which is the
/// trade-off the ablation bench quantifies.
class FixedPointMac {
 public:
  struct Config {
    FpFormat mul_fmt = kFp8E5M2;
    int total_bits = 24;  ///< accumulator register width W (<= 63)
    int frac_bits = 12;   ///< F bits below the binary point
    FixedRounding rounding = FixedRounding::kStochastic;
    int random_bits = 8;  ///< r for kStochastic
  };

  FixedPointMac(const Config& cfg, RandomSource& rng);

  /// acc <- sat(acc + Q(a*b)); returns the fixed-point register value.
  int64_t step(uint32_t a, uint32_t b);

  void reset() { acc_ = 0; }
  int64_t raw() const { return acc_; }
  double value() const;
  bool saturated() const { return saturated_; }
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  RandomSource& rng_;
  int64_t acc_ = 0;
  int64_t max_ = 0, min_ = 0;
  bool saturated_ = false;
};

/// Kahan (compensated) accumulator over a narrow FP format with RN
/// arithmetic — the accurate-summation baseline of [3]. Costs a second
/// register and three extra FP adds per step in hardware, which is what
/// the paper's SR design avoids.
class KahanAccumulator {
 public:
  explicit KahanAccumulator(const FpFormat& fmt) : fmt_(fmt) {}

  /// Adds one addend given as a bit pattern in the accumulator format.
  void add(uint32_t addend_bits);
  /// Adds a real value (quantized into the format on entry).
  void add_value(double x);

  uint32_t sum_bits() const { return sum_; }
  double value() const;
  void reset() { sum_ = 0; comp_ = 0; }

 private:
  FpFormat fmt_;
  uint32_t sum_ = 0;
  uint32_t comp_ = 0;  ///< running compensation (the lost low part)
};

/// The HFP8 scheme of [7]: E4M3 operands for the forward pass (more
/// mantissa, activations/weights), E5M2 for the backward pass (more range,
/// gradients). This helper returns the per-pass multiplier format; the
/// training harness threads it through the layer GEMMs.
struct Hfp8Scheme {
  FpFormat fwd_fmt = kFp8E4M3;
  FpFormat bwd_fmt = kFp8E5M2;
  FpFormat fmt_for(bool backward) const { return backward ? bwd_fmt : fwd_fmt; }
};

/// Dot products under each baseline, for the ablation benches: all take
/// float inputs, quantize into the multiplier format, and accumulate with
/// the respective design. `r` / rounding options follow the structs above.
double dot_fixed(const FixedPointMac::Config& cfg, const float* a,
                 const float* b, int n, RandomSource& rng,
                 bool* saturated = nullptr);
double dot_kahan(const FpFormat& mul_fmt, const FpFormat& acc_fmt,
                 const float* a, const float* b, int n);

}  // namespace srmac
