#include "mac/mac_unit.hpp"

#include <algorithm>

#include "fpemu/softfloat.hpp"
#include "mac/adder_eager_sr.hpp"
#include "mac/adder_lazy_sr.hpp"
#include "mac/adder_rn.hpp"
#include "mac/multiplier.hpp"

namespace srmac {

MacUnit::MacUnit(const MacConfig& cfg, uint64_t lfsr_seed)
    : cfg_(cfg.normalized()),
      prod_fmt_(product_format(cfg_.mul_fmt)),
      lfsr_(std::max(4, cfg_.random_bits), lfsr_seed) {
  widening_exact_ = cfg_.acc_fmt.exp_bits >= prod_fmt_.exp_bits &&
                    cfg_.acc_fmt.man_bits >= prod_fmt_.man_bits;
  acc_ = encode_zero(cfg_.acc_fmt, false);
}

uint32_t MacUnit::add(uint32_t x, uint32_t y, uint64_t rand_word,
                      AdderTrace* trace) const {
  switch (cfg_.adder) {
    case AdderKind::kRoundNearest:
      return add_rn(cfg_.acc_fmt, x, y, trace);
    case AdderKind::kLazySR:
      return add_lazy_sr(cfg_.acc_fmt, x, y, cfg_.random_bits, rand_word, trace);
    case AdderKind::kEagerSR:
      return add_eager_sr(cfg_.acc_fmt, x, y, cfg_.random_bits, rand_word, trace);
  }
  return 0;
}

uint32_t MacUnit::step(uint32_t a, uint32_t b) {
  const uint32_t prod = multiply_exact(cfg_.mul_fmt, a, b);
  // Bring the exact product into the accumulator format. For the paper's
  // reference configuration (E5M2 inputs, E6M5 accumulator) and for any
  // accumulator at least as wide, this conversion is exact; narrower
  // exponent ranges (e.g. an E5M10 accumulator) clamp via RN conversion,
  // matching a datapath that saturates out-of-range products.
  const uint32_t addend =
      (prod_fmt_ == cfg_.acc_fmt.with_subnormals(prod_fmt_.subnormals))
          ? prod
          : SoftFloat::convert(prod_fmt_, prod, cfg_.acc_fmt,
                               RoundingMode::kNearestEven);
  trace_ = AdderTrace{};
  acc_ = add(acc_, addend, lfsr_.draw(cfg_.random_bits), &trace_);
  return acc_;
}

uint32_t MacUnit::accumulate(uint32_t addend_acc_fmt) {
  trace_ = AdderTrace{};
  acc_ = add(acc_, addend_acc_fmt, lfsr_.draw(cfg_.random_bits), &trace_);
  return acc_;
}

double MacUnit::acc_value() const {
  return SoftFloat::to_double(cfg_.acc_fmt, acc_);
}

}  // namespace srmac
