#!/usr/bin/env python3
"""Dead-link check for the repository's Markdown docs.

Scans every tracked *.md file for inline links and validates the relative
ones (external http(s)/mailto links and pure #anchors are skipped; an
anchor on a relative link is stripped before the existence check). Exits
nonzero listing every dead link, so CI fails when a doc points at a file
that moved. Stdlib only.
"""

import os
import re
import sys

# [text](target) — target captured up to the first unescaped ')'; images
# (![alt](target)) match the same pattern one character in.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", ".claude"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    dead = []
    checked = 0
    for path in sorted(md_files(root)):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            checked += 1
            if not os.path.exists(resolved):
                line = text[: match.start()].count("\n") + 1
                dead.append(f"{path}:{line}: dead link -> {match.group(1)}")
    for entry in dead:
        print(entry, file=sys.stderr)
    print(f"checked {checked} relative links, {len(dead)} dead")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
