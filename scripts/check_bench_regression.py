#!/usr/bin/env python3
"""Throughput-regression gate over BENCH_*.json files.

Compares bench output files (the CI smoke runs, or the checked-in
docs/bench trend files) against the baseline values recorded in
docs/bench/bench_floors.json. A row fails when its throughput drops more
than `tolerance` (default 40%, generous: CI runners are noisy and smoke
sizes are tiny) below its baseline — catching the silent perf regressions
a green test suite would wave through, without flaking on machine jitter.

Floors file format:

    {
      "tolerance": 0.40,
      "floors": [
        {"bench": "gemm_throughput", "path": "fast", "threads": 1,
         "smoke": true, "baseline_mmac_per_s": 150.0},
        {"bench": "gemm_throughput", "path": "fast", "threads": 1,
         "smoke": false, "scenario_prefix": "rn:",
         "baseline_mmac_per_s": 349.0},
        {"bench": "layers", "smoke": true, "aggregate": true,
         "baseline_mmac_per_s": 100.0},
        {"bench": "serve", "path": "batch16", "smoke": true,
         "baseline_req_per_s": 2400.0},
        {"bench": "serve", "path": "chaos3", "smoke": true,
         "require_resolved": true, "min_completed_fraction": 0.5},
        {"bench": "serve", "smoke": false, "min_speedup": 1.05},
        {"bench": "serve", "transport": "wire", "path": "loadgen",
         "smoke": true, "baseline_req_per_s": 400.0,
         "require_resolved": true},
        {"bench": "serve", "leg": "multicore", "smoke": true,
         "min_grouped_speedup": 1.0, "min_hardware_parallelism": 2},
        {"bench": "serve", "path": "classes16", "class": "gold",
         "smoke": true, "max_p95_us": 500000.0,
         "min_completed_fraction": 1.0},
        {"bench": "drift", "smoke": true, "min_pair_rows": 8,
         "require_energy": true},
        {"bench": "drift", "smoke": true, "self": true,
         "max_final_maxabs": 0.0},
        {"bench": "drift", "smoke": true, "self": false,
         "shadow_prefix": "rn:", "max_final_maxabs": 4.0}
      ]
    }

A floor matches a gemm_throughput row on (path, threads, the file's smoke
flag, and an optional scenario prefix); a `layers` floor with "aggregate"
matches the whole file (total MACs / total GEMM seconds). A `serve` floor
with "path" matches that serving leg's requests/sec against
"baseline_req_per_s" (same tolerance machinery); a `serve` floor with
"min_speedup" checks the file's recorded batchN-vs-batch1 coalescing
speedup directly (no tolerance — it is already a floor; note the speedup
is a strong function of core count, so full-size floors pin the recorded
trend file, not an arbitrary target), and "min_compiled_speedup" does the
same for the recorded compiledN-vs-batchN speedup (the ahead-of-time
CompiledModel serving path, docs/COMPILER.md). Fleet/chaos serve legs carry
completed/failed counters; a floor with "require_resolved" asserts
completed + failed == requests (no request vanished or hung during the
chaos run) and "min_completed_fraction" bounds how much of the load the
degraded fleet may shed/fail (both no-tolerance checks — they are
correctness floors, not throughput). "min_grouped_speedup" floors the
file's recorded groupedN-vs-batchN merge speedup (grouped same-shape
execution, docs/SERVING.md) and "min_hardware_parallelism" asserts the
runner actually had cores for the merge to use — together they make the
multicore CI leg prove the grouped win instead of assuming it. A serve
floor carrying "class" matches a row's per-class "class_lat" entries by
class name and applies "max_p95_us" (a latency CEILING, no tolerance) and
per-class "min_completed_fraction" — the SLO-ordering gate. Serve floors
additionally select on
"transport": "inproc" (the default, bench_serve's in-process rows) vs
"wire" (loadgen's cross-process rows over the TCP protocol — a file-level
key in the loadgen JSON), and on "leg" (matched against the file-level
"leg" key bench_serve stamps with --leg; rules without "leg" match only
files without one, so a multicore floor can never gate a single-core
smoke file by accident). A "drift" floor gates bench_drift's scenario-pair
rows: pair selectors are "primary"/"shadow" (exact scenario strings),
"primary_prefix"/"shadow_prefix", and "self" (shadow == primary — the
zero-drift anchor pair); "max_final_maxabs" is a no-tolerance CEILING on
the pair's final-output max-abs divergence (the arithmetic is
deterministic, so any change is real), and file-level drift floors carry
"min_pair_rows" (sweep completeness) and "require_energy" (every pair
joined against both projected-MAC-energy columns). Rows without a
matching floor pass silently (new paths get floors when their numbers are
recorded); floors that match nothing in the given files are reported as
skipped, not failed — each CI job only produces a subset. Stdlib only.

Usage: check_bench_regression.py [--floors PATH] [--tolerance F] FILE...
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def scenario_matches(rule, data):
    prefix = rule.get("scenario_prefix")
    return prefix is None or str(data.get("scenario", "")).startswith(prefix)


def drift_pair_matches(rule, row):
    """Pair-row selectors of a drift floor: exact primary/shadow scenario
    strings, prefixes, and "self" (whether shadow == primary — the
    zero-drift anchor pair). Selectors compose; absent ones match all."""
    if rule.get("self") is not None:
        if (row.get("shadow") == row.get("primary")) != bool(rule["self"]):
            return False
    if rule.get("primary") is not None and \
            rule["primary"] != row.get("primary"):
        return False
    if rule.get("primary_prefix") is not None and \
            not str(row.get("primary", "")).startswith(rule["primary_prefix"]):
        return False
    if rule.get("shadow") is not None and rule["shadow"] != row.get("shadow"):
        return False
    if rule.get("shadow_prefix") is not None and \
            not str(row.get("shadow", "")).startswith(rule["shadow_prefix"]):
        return False
    return True


def check_file(path, data, floors, tolerance, report, report_speedup,
               report_resolved, report_parallelism, report_class,
               report_drift, report_drift_file):
    bench = data.get("bench")
    smoke = bool(data.get("smoke", False))
    matched = set()

    if bench == "drift":
        pairs = data.get("pairs", [])
        for i, rule in enumerate(floors):
            if rule.get("bench") != bench:
                continue
            if bool(rule.get("smoke", False)) != smoke:
                continue
            if "min_pair_rows" in rule or rule.get("require_energy"):
                matched.add(i)
                report_drift_file(path, pairs, rule)
                continue
            for row in pairs:
                if not drift_pair_matches(rule, row):
                    continue
                matched.add(i)
                report_drift(path, row, rule)
        return matched

    if bench == "serve":
        # In-process bench_serve files carry no "transport" key; loadgen's
        # cross-process rows say "wire". Rules default to "inproc" so the
        # pre-existing floors never match a loadgen file by accident. The
        # "leg" selector works the same way against the file-level key
        # bench_serve stamps with --leg (default "").
        transport = str(data.get("transport", "inproc"))
        leg = str(data.get("leg", ""))
        for i, rule in enumerate(floors):
            if rule.get("bench") != bench:
                continue
            if bool(rule.get("smoke", False)) != smoke:
                continue
            if str(rule.get("transport", "inproc")) != transport:
                continue
            if str(rule.get("leg", "")) != leg:
                continue
            if "min_speedup" in rule:
                matched.add(i)
                report_speedup(path, data.get("speedup_batched_vs_batch1"),
                               rule)
                continue
            if "min_compiled_speedup" in rule:
                matched.add(i)
                report_speedup(path, data.get("speedup_compiled_vs_batched"),
                               rule, key="min_compiled_speedup",
                               label="compiled")
                continue
            if "min_grouped_speedup" in rule:
                matched.add(i)
                report_speedup(path, data.get("speedup_grouped_vs_batched"),
                               rule, key="min_grouped_speedup",
                               label="grouped")
                if "min_hardware_parallelism" in rule:
                    report_parallelism(
                        path, data.get("hardware_parallelism"), rule)
                continue
            if "min_hardware_parallelism" in rule:
                matched.add(i)
                report_parallelism(path, data.get("hardware_parallelism"),
                                   rule)
                continue
            for row in data.get("results", []):
                if rule.get("path") != row.get("path"):
                    continue
                if "class" in rule:
                    for cl in row.get("class_lat", []):
                        if cl.get("class") != rule.get("class"):
                            continue
                        matched.add(i)
                        report_class(path, row, cl, rule)
                    continue
                matched.add(i)
                if "baseline_req_per_s" in rule:
                    report(path, "%s req/s" % row.get("path"),
                           row.get("req_per_s", 0.0), rule, tolerance)
                if rule.get("require_resolved") or \
                        "min_completed_fraction" in rule:
                    report_resolved(path, row, rule)
        return matched

    if bench == "layers":
        total_macs = sum(r.get("gemm_macs", 0) for r in data.get("results", []))
        total_secs = sum(r.get("gemm_seconds", 0.0)
                         for r in data.get("results", []))
        aggregate = total_macs / total_secs / 1e6 if total_secs > 0 else 0.0
        for i, rule in enumerate(floors):
            if rule.get("bench") != bench or not rule.get("aggregate"):
                continue
            if bool(rule.get("smoke", False)) != smoke:
                continue
            matched.add(i)
            report(path, "aggregate", aggregate, rule, tolerance)
        return matched

    for row in data.get("results", []):
        for i, rule in enumerate(floors):
            if rule.get("bench") != bench:
                continue
            if rule.get("path") != row.get("path"):
                continue
            if rule.get("threads") is not None and \
                    rule.get("threads") != row.get("threads"):
                continue
            if bool(rule.get("smoke", False)) != smoke:
                continue
            if not scenario_matches(rule, data):
                continue
            matched.add(i)
            label = "%s@%d" % (row.get("path"), row.get("threads", 0))
            report(path, label, row.get("mmac_per_s", 0.0), rule, tolerance)
    return matched


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--floors", default="docs/bench/bench_floors.json")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="override the floors file's tolerance fraction")
    ap.add_argument("--min-rows", type=int, default=1,
                    help="fail unless at least this many rows matched a "
                         "floor — catches bench-format or row-name drift "
                         "that would otherwise turn the gate into a no-op")
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    spec = load(args.floors)
    floors = spec.get("floors", [])
    tolerance = args.tolerance if args.tolerance is not None \
        else float(spec.get("tolerance", 0.40))

    failures = []
    checked = [0]

    def report(path, label, value, rule, tol):
        # gemm/layers floors are MMAC/s; serve leg floors are requests/sec.
        baseline_key = "baseline_mmac_per_s" if "baseline_mmac_per_s" in rule \
            else "baseline_req_per_s"
        unit = "MMAC/s" if baseline_key == "baseline_mmac_per_s" else "req/s"
        floor = float(rule[baseline_key]) * (1.0 - tol)
        checked[0] += 1
        ok = value >= floor
        print("%s %s: %s = %.1f %s (baseline %.1f, floor %.1f)"
              % ("ok  " if ok else "FAIL", path, label, value, unit,
                 rule[baseline_key], floor))
        if not ok:
            failures.append("%s: %s dropped to %.1f %s, floor %.1f"
                            % (path, label, value, unit, floor))

    def report_resolved(path, row, rule):
        # Chaos-leg correctness floors: every request resolved (completed
        # or failed typed — nothing vanished/hung), and the degraded fleet
        # still completed at least min_completed_fraction of the load.
        label = row.get("path", "?")
        requests = int(row.get("requests", 0))
        completed = int(row.get("completed", 0))
        failed = int(row.get("failed", 0))
        checked[0] += 1
        ok = True
        if rule.get("require_resolved") and completed + failed != requests:
            ok = False
            failures.append(
                "%s: %s left %d of %d requests unresolved"
                % (path, label, requests - completed - failed, requests))
        frac = completed / requests if requests else 0.0
        need = float(rule.get("min_completed_fraction", 0.0))
        if frac < need:
            ok = False
            failures.append(
                "%s: %s completed only %.0f%% of requests (floor %.0f%%)"
                % (path, label, 100.0 * frac, 100.0 * need))
        print("%s %s: %s resolved %d+%d of %d (completed %.0f%%%s)"
              % ("ok  " if ok else "FAIL", path, label, completed, failed,
                 requests, 100.0 * frac,
                 (", floor %.0f%%" % (100.0 * need)) if need else ""))

    def report_speedup(path, value, rule, key="min_speedup",
                       label="coalescing"):
        need = float(rule[key])
        checked[0] += 1
        ok = value is not None and float(value) >= need
        shown = float(value) if value is not None else 0.0
        print("%s %s: %s speedup = %.2fx (floor %.2fx)"
              % ("ok  " if ok else "FAIL", path, label, shown, need))
        if not ok:
            failures.append("%s: %s speedup %.2fx below floor %.2fx"
                            % (path, label, shown, need))

    def report_parallelism(path, value, rule):
        # Sanity anchor for the multicore leg: a grouped-speedup floor on a
        # 1-core runner proves nothing, so the floor asserts the runner's
        # recorded hardware_parallelism too (no tolerance — it is a fact
        # about the machine, not a measurement).
        need = int(rule["min_hardware_parallelism"])
        got = int(value) if value is not None else 0
        checked[0] += 1
        ok = got >= need
        print("%s %s: hardware_parallelism = %d (floor %d)"
              % ("ok  " if ok else "FAIL", path, got, need))
        if not ok:
            failures.append(
                "%s: hardware_parallelism %d below floor %d (the multicore "
                "leg ran on too small a runner)" % (path, got, need))

    def report_class(path, row, cl, rule):
        # Per-class SLO floors over a classesN row's class_lat entries:
        # p95 latency CEILING and completed-fraction floor, both
        # no-tolerance (ordering inversions and starved classes are
        # correctness, not jitter).
        label = "%s class %s" % (row.get("path", "?"), cl.get("class", "?"))
        checked[0] += 1
        ok = True
        if "max_p95_us" in rule:
            p95 = float(cl.get("p95_us", 0.0))
            ceiling = float(rule["max_p95_us"])
            if p95 > ceiling:
                ok = False
                failures.append("%s: %s p95 %.1fus above ceiling %.1fus"
                                % (path, label, p95, ceiling))
        frac = float(cl.get("completed_fraction", 0.0))
        need = float(rule.get("min_completed_fraction", 0.0))
        if frac < need:
            ok = False
            failures.append(
                "%s: %s completed only %.0f%% of requests (floor %.0f%%)"
                % (path, label, 100.0 * frac, 100.0 * need))
        print("%s %s: %s p95 = %.1fus%s, completed %.0f%%%s"
              % ("ok  " if ok else "FAIL", path, label,
                 float(cl.get("p95_us", 0.0)),
                 (" (ceiling %.1fus)" % float(rule["max_p95_us"]))
                 if "max_p95_us" in rule else "",
                 100.0 * frac,
                 (", floor %.0f%%" % (100.0 * need)) if need else ""))

    def report_drift(path, row, rule):
        # Drift-pair floors (bench_drift rows): "max_final_maxabs" is a
        # CEILING on the pair's final-output max-abs divergence, with no
        # tolerance — the arithmetic is deterministic, so any change is a
        # real accuracy-drift change. The self pair (shadow == primary)
        # carries ceiling 0.0: the standing proof that the shadow path
        # replays the primary bitwise. Pairs must also have recorded
        # samples — an empty series passing a ceiling would be vacuous.
        label = "%s -> %s" % (row.get("primary", "?"), row.get("shadow", "?"))
        checked[0] += 1
        ok = True
        if int(row.get("samples", 0)) <= 0:
            ok = False
            failures.append("%s: %s recorded no drift samples"
                            % (path, label))
        if "max_final_maxabs" in rule:
            value = float(row.get("final_max_abs", 0.0))
            ceiling = float(rule["max_final_maxabs"])
            if value > ceiling:
                ok = False
                failures.append(
                    "%s: %s final max-abs drift %.6g above ceiling %.6g"
                    % (path, label, value, ceiling))
        print("%s %s: %s max_abs = %.6g%s, %d samples"
              % ("ok  " if ok else "FAIL", path, label,
                 float(row.get("final_max_abs", 0.0)),
                 (" (ceiling %.6g)" % float(rule["max_final_maxabs"]))
                 if "max_final_maxabs" in rule else "",
                 int(row.get("samples", 0))))

    def report_drift_file(path, pairs, rule):
        # File-level completeness floors of a drift sweep: at least
        # min_pair_rows scenario pairs, and (require_energy) every pair
        # joined against both projected-energy columns — the decision
        # bench's contract that no row silently lost its energy side.
        checked[0] += 1
        ok = True
        need = int(rule.get("min_pair_rows", 0))
        if len(pairs) < need:
            ok = False
            failures.append("%s: only %d drift pair rows (floor %d)"
                            % (path, len(pairs), need))
        if rule.get("require_energy"):
            for row in pairs:
                if float(row.get("primary_energy_uj", 0.0)) <= 0.0 or \
                        float(row.get("shadow_energy_uj", 0.0)) <= 0.0:
                    ok = False
                    failures.append(
                        "%s: pair %s -> %s is missing an energy column"
                        % (path, row.get("primary", "?"),
                           row.get("shadow", "?")))
        print("%s %s: %d drift pair rows%s%s"
              % ("ok  " if ok else "FAIL", path, len(pairs),
                 (" (floor %d)" % need) if need else "",
                 ", energy joined" if rule.get("require_energy") else ""))

    matched = set()
    for path in args.files:
        try:
            data = load(path)
        except (OSError, json.JSONDecodeError) as e:
            failures.append("%s: unreadable bench file (%s)" % (path, e))
            continue
        matched |= check_file(path, data, floors, tolerance, report,
                              report_speedup, report_resolved,
                              report_parallelism, report_class,
                              report_drift, report_drift_file)

    for i, rule in enumerate(floors):
        if i not in matched:
            print("skip (no matching row in given files): %s"
                  % json.dumps(rule))

    if checked[0] < args.min_rows:
        failures.append(
            "only %d row(s) matched any floor (--min-rows %d): the bench "
            "output format, row names, or floor selectors have drifted"
            % (checked[0], args.min_rows))

    print("checked %d rows against %d floors, %d failures"
          % (checked[0], len(floors), len(failures)))
    for f in failures:
        print("error: " + f, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
